// The incremental dirty-set decide contract: re-running best_swap only
// over the nodes whose readable counts (or views) changed produces round
// trajectories bit-identical to a full rescan of every node — for every
// phase-kernel protocol, at every threads/shards setting — and the
// steady-state round allocates nothing on the heap after warm-up.
//
// The equivalence leans on the candidate-cache invariant
// (docs/ARCHITECTURE.md): the decide callback is a pure function of a
// node's readable state, every ledger mutation marks exactly the nodes
// whose readable state it changed (endpoints above the eligibility
// threshold + eligible common partners), and gossip marks view-install
// owners — so a clean node's cached candidate equals what a rescan would
// recompute.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/balancing_sim.hpp"
#include "core/maxmin_balancer.hpp"
#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "scenario/protocol.hpp"
#include "sim/network_state.hpp"
#include "util/rng.hpp"

// --- allocation counter -----------------------------------------------
// Global operator new/delete overrides counting every heap allocation in
// the test binary. The hot-path test warms a simulation up, snapshots the
// counter, and asserts that steady-state rounds allocate nothing.
//
// GCC cannot see that the malloc-backed new and the free-backed delete
// below are a matched pair once it inlines both sides of a container's
// lifetime into one test body, so it flags the override itself.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

// TSan's runtime allocates behind the program's back (interceptors,
// shadow bookkeeping), so heap-silence assertions only hold uninstrumented.
#if defined(__SANITIZE_THREAD__)
#define POQ_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define POQ_UNDER_TSAN 1
#endif
#endif

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  const auto alignment = static_cast<std::size_t>(align);
  // aligned_alloc wants size to be a multiple of the alignment.
  const std::size_t rounded =
      (std::max<std::size_t>(size, 1) + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace poq::scenario {
namespace {

std::string run_dump(ScenarioSpec spec, const std::string& decide,
                     std::int64_t threads, std::int64_t shards) {
  spec.knobs["decide"] = decide;
  spec.knobs["threads"] = threads;
  spec.knobs["shards"] = shards;
  // to_json(false): phase_ms.* wall-clock is outside the contract.
  return registry().run(spec.protocol, spec).to_json(false).dump(2);
}

/// Randomized scenario frames drawn from a fixed meta-seed: topology
/// family, size, rates, distillation, and per-protocol knobs all vary.
ScenarioSpec fuzz_spec(const std::string& protocol, util::Rng& fuzz) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.topology = fuzz.bernoulli(0.5) ? "random-grid" : "cycle";
  const std::size_t sizes[] = {9, 16, 25};
  spec.nodes = sizes[fuzz.uniform_index(3)];
  spec.consumer_pairs = 6 + fuzz.uniform_index(10);
  spec.requests = 20 + fuzz.uniform_index(30);
  spec.seed = 1 + fuzz.uniform_index(1000);
  if (protocol == "fidelity") {
    spec.knobs["duration"] = 30.0 + static_cast<double>(fuzz.uniform_index(3)) * 15.0;
    spec.knobs["memory-T"] = fuzz.bernoulli(0.5) ? 30.0 : 80.0;
  } else {
    spec.knobs["max-rounds"] = std::int64_t{2000};
    const double rates[] = {0.05, 0.3, 1.0, 1.6};
    spec.knobs["generation-rate"] = rates[fuzz.uniform_index(4)];
    const double distillations[] = {1.0, 1.5, 2.0};
    spec.knobs["distillation"] = distillations[fuzz.uniform_index(3)];
    if (protocol == "gossip") {
      spec.knobs["fanout"] = static_cast<std::int64_t>(1 + fuzz.uniform_index(3));
      spec.knobs["latency"] = fuzz.bernoulli(0.5) ? 1.0 : 2.0;
    }
  }
  return spec;
}

TEST(IncrementalDecide, FuzzBitIdenticalToFullRescan) {
  // protocols {balancing, gossip, fidelity} x threads {1,8} x shards
  // {1,16} on randomized frames: the dirty-set decide must reproduce the
  // forced full rescan bit for bit, at every concurrency setting.
  util::Rng fuzz(0xD1E7);
  const std::vector<std::string> protocols = {"balancing", "gossip",
                                              "fidelity"};
  for (int trial = 0; trial < 3; ++trial) {
    for (const std::string& protocol : protocols) {
      const ScenarioSpec spec = fuzz_spec(protocol, fuzz);
      for (const std::int64_t threads : {1, 8}) {
        for (const std::int64_t shards : {1, 16}) {
          const std::string incremental =
              run_dump(spec, "incremental", threads, shards);
          const std::string full = run_dump(spec, "full", threads, shards);
          EXPECT_EQ(incremental, full)
              << protocol << " trial " << trial << " diverged at threads="
              << threads << " shards=" << shards << "\nspec: "
              << spec.to_json().dump(2);
        }
      }
    }
  }
}

TEST(IncrementalDecide, SparseSteadyStateStaysIdentical) {
  // The regime the hot path is built for: rare generation events on a
  // larger grid, long horizon, tiny dirty frontier — plus a fractional
  // distillation so commit-time rounding draws stay exercised.
  ScenarioSpec spec;
  spec.protocol = "balancing";
  spec.topology = "random-grid";
  spec.nodes = 100;
  spec.consumer_pairs = 20;
  spec.requests = 5000;
  spec.seed = 7;
  spec.knobs["max-rounds"] = std::int64_t{4000};
  spec.knobs["generation-rate"] = 0.02;
  spec.knobs["distillation"] = 1.5;
  for (const std::int64_t threads : {1, 8}) {
    EXPECT_EQ(run_dump(spec, "incremental", threads, 16),
              run_dump(spec, "full", threads, 16))
        << "threads=" << threads;
  }
}

// --- lockstep round trajectories --------------------------------------

std::string ledger_dump(const core::PairLedger& ledger) {
  std::string out;
  const auto n = static_cast<core::NodeId>(ledger.node_count());
  for (core::NodeId x = 0; x < n; ++x) {
    for (core::NodeId y = x + 1; y < n; ++y) {
      out += std::to_string(ledger.count(x, y)) + ",";
    }
  }
  return out;
}

TEST(IncrementalDecide, RoundTrajectoriesMatchFullRescan) {
  // Stronger than end-metrics equality: the full count matrix must match
  // after every single round, so a divergence cannot cancel out later.
  util::Rng topology_rng(3);
  const graph::Graph graph = graph::make_random_connected_grid(49, topology_rng);
  util::Rng workload_rng(5);
  const core::Workload workload =
      core::make_uniform_workload(49, 20, 100000, workload_rng);
  core::BalancingConfig config;
  config.generation_per_edge_per_round = 0.4;
  config.seed = 11;
  config.tick.mode = sim::TickMode::kSharded;
  config.tick.threads = 2;
  config.tick.shards = 8;
  core::BalancingConfig full_config = config;
  full_config.tick.incremental_decide = false;
  core::BalancingSimulation incremental(graph, workload, config);
  core::BalancingSimulation full(graph, workload, full_config);
  for (int round = 0; round < 400; ++round) {
    incremental.step_round();
    full.step_round();
    ASSERT_EQ(ledger_dump(incremental.ledger()), ledger_dump(full.ledger()))
        << "count matrices diverged at round " << round;
    ASSERT_EQ(incremental.result().swaps_performed,
              full.result().swaps_performed)
        << "swap counts diverged at round " << round;
  }
}

// --- zero-allocation steady state -------------------------------------

TEST(HotPathAllocations, SteadyStateRoundAllocatesNothing) {
  // After warm-up, a balancing round on the sharded engine — generation
  // (fractional rate: batched keyed streams exercised), dirty-set decide,
  // two-level commit, consumption — must not touch the heap: all
  // per-round scratch is pre-sized, the CSR partner arena mutates in
  // place, and the pool recycles its job allocation. shards=8 forces the
  // chunk grain small enough that every phase goes through the dynamic
  // work-stealing dispatch (multiple chunks claimed off the atomic
  // cursor), so the chunked scheduler path is held to the same
  // zero-allocation contract as the inline path.
#ifdef POQ_UNDER_TSAN
  GTEST_SKIP() << "the TSan runtime allocates behind the program's back, "
                  "so a heap-silence assertion is meaningless under it";
#endif
  for (const unsigned threads : {1u, 2u}) {
    for (const unsigned shards : {0u, 8u}) {
      util::Rng topology_rng(3);
      const graph::Graph graph =
          graph::make_random_connected_grid(49, topology_rng);
      util::Rng workload_rng(5);
      const core::Workload workload =
          core::make_uniform_workload(49, 20, 100000, workload_rng);
      core::BalancingConfig config;
      config.generation_per_edge_per_round = 0.5;
      config.seed = 9;
      config.tick.mode = sim::TickMode::kSharded;
      config.tick.threads = threads;
      config.tick.shards = shards;
      core::BalancingSimulation sim(graph, workload, config);
      for (int round = 0; round < 300; ++round) sim.step_round();
      const std::uint64_t before =
          g_allocation_count.load(std::memory_order_relaxed);
      for (int round = 0; round < 200; ++round) sim.step_round();
      const std::uint64_t after =
          g_allocation_count.load(std::memory_order_relaxed);
      EXPECT_EQ(after - before, 0u)
          << (after - before) << " allocations in 200 steady-state rounds at "
          << "threads=" << threads << " shards=" << shards;
    }
  }
}

// --- O(#candidates) commit --------------------------------------------

/// Probe count of one decide + commit with exactly 16 candidates (nodes
/// 1, 5, ..., 61 of a cycle of `nodes`), in the allocation-counting
/// spirit above: the counter proves no hidden O(n) scan, not just that
/// the result is right.
std::uint64_t commit_probes(std::size_t nodes) {
  const graph::Graph graph = graph::make_cycle(nodes);
  sim::TickConcurrency tick;
  tick.mode = sim::TickMode::kSharded;
  tick.threads = 1;
  sim::NetworkState state(graph, 1, tick);
  state.decide_swaps(
      [&](core::NodeId x, core::MaxMinBalancer::Scratch&)
          -> std::optional<core::SwapCandidate> {
        if (x < 64 && x % 4 == 1) {
          return core::SwapCandidate{x - 1, x + 1, 1};
        }
        return std::nullopt;
      });
  (void)state.commit_swaps(
      core::MaxMinBalancer(core::DistillationMatrix(1.0)), /*first=*/0, /*round=*/0, /*attempt=*/0,
      [](core::NodeId, const core::SwapCandidate&) { return false; });
  return state.last_commit_probes();
}

TEST(HotPathAllocations, CommitCostTracksCandidatesNotNodes) {
  // The same 16 decided candidates on a 64-node and a 4096-node network:
  // the commit's probe count (candidate-list entries visited across its
  // grouping/fill/stats walks) must not move with the node count — the
  // old implementation walked all n nodes three times per attempt.
  const std::uint64_t small = commit_probes(64);
  const std::uint64_t large = commit_probes(4096);
  EXPECT_EQ(small, large)
      << "commit probes scaled with node count: " << small << " at n=64 vs "
      << large << " at n=4096";
  // And the absolute count is a small multiple of #candidates (16): the
  // four walks visit each candidate once.
  EXPECT_LE(large, 16u * 4u);
  EXPECT_GE(large, 16u);
}

TEST(HotPathAllocations, QuiescentCommitIsFree) {
  // No candidates decided anywhere: the commit must return without
  // probing at all (the empty-list fast path).
  const graph::Graph graph = graph::make_cycle(32);
  sim::TickConcurrency tick;
  tick.mode = sim::TickMode::kSharded;
  tick.threads = 1;
  sim::NetworkState state(graph, 1, tick);
  state.decide_swaps([](core::NodeId, core::MaxMinBalancer::Scratch&)
                         -> std::optional<core::SwapCandidate> {
    return std::nullopt;
  });
  const auto stats = state.commit_swaps(
      core::MaxMinBalancer(core::DistillationMatrix(1.0)), 0, 0, 0,
      [](core::NodeId, const core::SwapCandidate&) { return true; });
  EXPECT_EQ(stats.swaps, 0u);
  EXPECT_EQ(state.last_commit_probes(), 0u);
}

}  // namespace
}  // namespace poq::scenario
