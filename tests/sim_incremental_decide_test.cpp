// The incremental dirty-set decide contract: re-running best_swap only
// over the nodes whose readable counts (or views) changed produces round
// trajectories bit-identical to a full rescan of every node — for every
// phase-kernel protocol, at every threads/shards setting — and the
// steady-state round allocates nothing on the heap after warm-up.
//
// The equivalence leans on the candidate-cache invariant
// (docs/ARCHITECTURE.md): the decide callback is a pure function of a
// node's readable state, every ledger mutation marks exactly the nodes
// whose readable state it changed (endpoints above the eligibility
// threshold + eligible common partners), and gossip marks view-install
// owners — so a clean node's cached candidate equals what a rescan would
// recompute.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/balancing_sim.hpp"
#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "scenario/protocol.hpp"
#include "util/rng.hpp"

// --- allocation counter -----------------------------------------------
// Global operator new/delete overrides counting every heap allocation in
// the test binary. The hot-path test warms a simulation up, snapshots the
// counter, and asserts that steady-state rounds allocate nothing.

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  const auto alignment = static_cast<std::size_t>(align);
  // aligned_alloc wants size to be a multiple of the alignment.
  const std::size_t rounded =
      (std::max<std::size_t>(size, 1) + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace poq::scenario {
namespace {

std::string run_dump(ScenarioSpec spec, const std::string& decide,
                     std::int64_t threads, std::int64_t shards) {
  spec.knobs["decide"] = decide;
  spec.knobs["threads"] = threads;
  spec.knobs["shards"] = shards;
  // to_json(false): phase_ms.* wall-clock is outside the contract.
  return registry().run(spec.protocol, spec).to_json(false).dump(2);
}

/// Randomized scenario frames drawn from a fixed meta-seed: topology
/// family, size, rates, distillation, and per-protocol knobs all vary.
ScenarioSpec fuzz_spec(const std::string& protocol, util::Rng& fuzz) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.topology = fuzz.bernoulli(0.5) ? "random-grid" : "cycle";
  const std::size_t sizes[] = {9, 16, 25};
  spec.nodes = sizes[fuzz.uniform_index(3)];
  spec.consumer_pairs = 6 + fuzz.uniform_index(10);
  spec.requests = 20 + fuzz.uniform_index(30);
  spec.seed = 1 + fuzz.uniform_index(1000);
  if (protocol == "fidelity") {
    spec.knobs["duration"] = 30.0 + static_cast<double>(fuzz.uniform_index(3)) * 15.0;
    spec.knobs["memory-T"] = fuzz.bernoulli(0.5) ? 30.0 : 80.0;
  } else {
    spec.knobs["max-rounds"] = std::int64_t{2000};
    const double rates[] = {0.05, 0.3, 1.0, 1.6};
    spec.knobs["generation-rate"] = rates[fuzz.uniform_index(4)];
    const double distillations[] = {1.0, 1.5, 2.0};
    spec.knobs["distillation"] = distillations[fuzz.uniform_index(3)];
    if (protocol == "gossip") {
      spec.knobs["fanout"] = static_cast<std::int64_t>(1 + fuzz.uniform_index(3));
      spec.knobs["latency"] = fuzz.bernoulli(0.5) ? 1.0 : 2.0;
    }
  }
  return spec;
}

TEST(IncrementalDecide, FuzzBitIdenticalToFullRescan) {
  // protocols {balancing, gossip, fidelity} x threads {1,8} x shards
  // {1,16} on randomized frames: the dirty-set decide must reproduce the
  // forced full rescan bit for bit, at every concurrency setting.
  util::Rng fuzz(0xD1E7);
  const std::vector<std::string> protocols = {"balancing", "gossip",
                                              "fidelity"};
  for (int trial = 0; trial < 3; ++trial) {
    for (const std::string& protocol : protocols) {
      const ScenarioSpec spec = fuzz_spec(protocol, fuzz);
      for (const std::int64_t threads : {1, 8}) {
        for (const std::int64_t shards : {1, 16}) {
          const std::string incremental =
              run_dump(spec, "incremental", threads, shards);
          const std::string full = run_dump(spec, "full", threads, shards);
          EXPECT_EQ(incremental, full)
              << protocol << " trial " << trial << " diverged at threads="
              << threads << " shards=" << shards << "\nspec: "
              << spec.to_json().dump(2);
        }
      }
    }
  }
}

TEST(IncrementalDecide, SparseSteadyStateStaysIdentical) {
  // The regime the hot path is built for: rare generation events on a
  // larger grid, long horizon, tiny dirty frontier — plus a fractional
  // distillation so commit-time rounding draws stay exercised.
  ScenarioSpec spec;
  spec.protocol = "balancing";
  spec.topology = "random-grid";
  spec.nodes = 100;
  spec.consumer_pairs = 20;
  spec.requests = 5000;
  spec.seed = 7;
  spec.knobs["max-rounds"] = std::int64_t{4000};
  spec.knobs["generation-rate"] = 0.02;
  spec.knobs["distillation"] = 1.5;
  for (const std::int64_t threads : {1, 8}) {
    EXPECT_EQ(run_dump(spec, "incremental", threads, 16),
              run_dump(spec, "full", threads, 16))
        << "threads=" << threads;
  }
}

// --- lockstep round trajectories --------------------------------------

std::string ledger_dump(const core::PairLedger& ledger) {
  std::string out;
  const auto n = static_cast<core::NodeId>(ledger.node_count());
  for (core::NodeId x = 0; x < n; ++x) {
    for (core::NodeId y = x + 1; y < n; ++y) {
      out += std::to_string(ledger.count(x, y)) + ",";
    }
  }
  return out;
}

TEST(IncrementalDecide, RoundTrajectoriesMatchFullRescan) {
  // Stronger than end-metrics equality: the full count matrix must match
  // after every single round, so a divergence cannot cancel out later.
  util::Rng topology_rng(3);
  const graph::Graph graph = graph::make_random_connected_grid(49, topology_rng);
  util::Rng workload_rng(5);
  const core::Workload workload =
      core::make_uniform_workload(49, 20, 100000, workload_rng);
  core::BalancingConfig config;
  config.generation_per_edge_per_round = 0.4;
  config.seed = 11;
  config.tick.mode = sim::TickMode::kSharded;
  config.tick.threads = 2;
  config.tick.shards = 8;
  core::BalancingConfig full_config = config;
  full_config.tick.incremental_decide = false;
  core::BalancingSimulation incremental(graph, workload, config);
  core::BalancingSimulation full(graph, workload, full_config);
  for (int round = 0; round < 400; ++round) {
    incremental.step_round();
    full.step_round();
    ASSERT_EQ(ledger_dump(incremental.ledger()), ledger_dump(full.ledger()))
        << "count matrices diverged at round " << round;
    ASSERT_EQ(incremental.result().swaps_performed,
              full.result().swaps_performed)
        << "swap counts diverged at round " << round;
  }
}

// --- zero-allocation steady state -------------------------------------

TEST(HotPathAllocations, SteadyStateRoundAllocatesNothing) {
  // After warm-up, a balancing round on the sharded engine — generation
  // (fractional rate: keyed streams exercised), dirty-set decide,
  // two-level commit, consumption — must not touch the heap: all
  // per-round scratch is pre-sized, the CSR partner arena mutates in
  // place, and the pool recycles its job allocation.
  for (const unsigned threads : {1u, 2u}) {
    util::Rng topology_rng(3);
    const graph::Graph graph =
        graph::make_random_connected_grid(49, topology_rng);
    util::Rng workload_rng(5);
    const core::Workload workload =
        core::make_uniform_workload(49, 20, 100000, workload_rng);
    core::BalancingConfig config;
    config.generation_per_edge_per_round = 0.5;
    config.seed = 9;
    config.tick.mode = sim::TickMode::kSharded;
    config.tick.threads = threads;
    core::BalancingSimulation sim(graph, workload, config);
    for (int round = 0; round < 300; ++round) sim.step_round();
    const std::uint64_t before =
        g_allocation_count.load(std::memory_order_relaxed);
    for (int round = 0; round < 200; ++round) sim.step_round();
    const std::uint64_t after =
        g_allocation_count.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << (after - before) << " allocations in 200 steady-state rounds at "
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace poq::scenario
