// sim::NetworkState phase kernels: the generation kernel's keyed streams,
// the decay/decohere kernels, and above all the two-level swap commit —
// disjoint node-triple components commit in parallel, conflicting swaps
// serialize in canonical rotating order, and the outcome must equal a
// fully serial canonical commit, for every threads/shards setting, even
// on a dense round where every node has a candidate.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/ledger.hpp"
#include "core/maxmin_balancer.hpp"
#include "graph/topology.hpp"
#include "sim/network_state.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::sim {
namespace {

using core::MaxMinBalancer;
using core::NodeId;
using core::PairLedger;
using core::SwapCandidate;

TickConcurrency sharded(std::uint32_t threads, std::uint32_t shards = 0) {
  TickConcurrency tick;
  tick.mode = TickMode::kSharded;
  tick.threads = threads;
  tick.shards = shards;
  return tick;
}

/// Text fingerprint of the full count matrix.
std::string ledger_dump(const PairLedger& ledger) {
  std::string out;
  const auto n = static_cast<NodeId>(ledger.node_count());
  for (NodeId x = 0; x < n; ++x) {
    for (NodeId y = x + 1; y < n; ++y) {
      out += std::to_string(ledger.count(x, y)) + ",";
    }
    out += "\n";
  }
  return out;
}

/// Seed a dense, conflict-heavy count state: every adjacent triple of the
/// cycle plus chords holds enough pairs that every node decides a swap,
/// and neighbouring triples overlap (maximal conflict components).
void fill_dense(PairLedger& ledger, std::uint32_t pairs_per_link) {
  const auto n = static_cast<NodeId>(ledger.node_count());
  for (NodeId x = 0; x < n; ++x) {
    ledger.add(x, static_cast<NodeId>((x + 1) % n), pairs_per_link);
    ledger.add(x, static_cast<NodeId>((x + 2) % n), pairs_per_link / 2 + 1);
  }
}

/// Reference implementation: the fully serial canonical commit (walk
/// nodes in rotating order, re-check, execute with the same keyed
/// streams). The two-level commit must reproduce it exactly.
struct SerialOutcome {
  std::uint64_t swaps = 0;
  std::uint64_t consumed = 0;
  std::vector<NodeId> commit_order;
};
SerialOutcome serial_commit(
    const MaxMinBalancer& balancer, PairLedger& ledger,
    const std::vector<std::optional<SwapCandidate>>& candidates, NodeId first,
    std::uint64_t seed, std::uint32_t round, std::uint32_t attempt) {
  SerialOutcome outcome;
  const auto n = static_cast<NodeId>(ledger.node_count());
  for (NodeId offset = 0; offset < n; ++offset) {
    const auto x = static_cast<NodeId>((first + offset) % n);
    if (!candidates[x]) continue;
    if (!balancer.is_preferable(ledger, x, candidates[x]->left,
                                candidates[x]->right)) {
      continue;
    }
    util::Rng rng = util::Rng::keyed(
        seed, stream_tag::kSwap,
        (static_cast<std::uint64_t>(attempt) << 32) | round, x);
    const auto execution = balancer.execute_swap(
        ledger, x, candidates[x]->left, candidates[x]->right, rng);
    ++outcome.swaps;
    outcome.consumed += execution.consumed_left + execution.consumed_right;
    outcome.commit_order.push_back(x);
  }
  return outcome;
}

TEST(NetworkStateCommit, DenseConflictRoundMatchesSerialCommit) {
  // Dense round: chords guarantee overlapping triples, so most of the
  // network collapses into a few conflict components, with a handful of
  // disjoint ones. Every (threads, shards) setting must reproduce the
  // serial canonical commit bit for bit — counts, stats, and order.
  const graph::Graph graph = graph::make_cycle(24);
  const MaxMinBalancer balancer{core::DistillationMatrix(1.0)};
  const std::uint64_t seed = 99;
  const std::uint32_t round = 17;

  // Reference: serial commit on an identically prepared ledger.
  PairLedger reference(24);
  fill_dense(reference, 6);
  std::vector<std::optional<SwapCandidate>> decided(24);
  std::size_t with_candidate = 0;
  {
    MaxMinBalancer::Scratch scratch;
    for (NodeId x = 0; x < 24; ++x) {
      decided[x] = balancer.best_swap(reference, x, scratch);
      if (decided[x]) ++with_candidate;
    }
  }
  ASSERT_GT(with_candidate, 20u) << "dense setup should decide nearly everywhere";
  const auto first = static_cast<NodeId>(round % 24);
  const SerialOutcome expected =
      serial_commit(balancer, reference, decided, first, seed, round, 0);
  ASSERT_GT(expected.swaps, 0u);

  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    for (const std::uint32_t shards : {1u, 3u, 16u}) {
      NetworkState state(graph, seed, sharded(threads, shards));
      fill_dense(state.ledger(), 6);
      state.decide_swaps([&](NodeId x, MaxMinBalancer::Scratch& scratch) {
        return balancer.best_swap(state.ledger(), x, scratch);
      });
      for (NodeId x = 0; x < 24; ++x) {
        ASSERT_EQ(state.candidates()[x].has_value(), decided[x].has_value());
      }
      std::vector<NodeId> observed_order;
      const NetworkState::CommitStats stats = state.commit_swaps(
          balancer, first, round, 0,
          [&](NodeId x, const SwapCandidate& candidate) {
            return balancer.is_preferable(state.ledger(), x, candidate.left,
                                          candidate.right);
          },
          [&](const NetworkState::CommittedSwap& swap) {
            observed_order.push_back(swap.node);
          });
      EXPECT_EQ(stats.swaps, expected.swaps)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(stats.pairs_consumed, expected.consumed);
      EXPECT_EQ(stats.pairs_produced, expected.swaps);
      EXPECT_EQ(observed_order, expected.commit_order);
      EXPECT_EQ(ledger_dump(state.ledger()), ledger_dump(reference))
          << "threads=" << threads << " shards=" << shards;
    }
  }
}

TEST(NetworkStateCommit, ConflictingCandidatesSerializeInCanonicalOrder) {
  // Three nodes on a path all want the same donor pairs: only the first
  // in rotating order can win; the others must fail the re-check.
  const graph::Graph graph = graph::make_path(5);
  const MaxMinBalancer balancer{core::DistillationMatrix(1.0)};
  NetworkState state(graph, 1, sharded(4, 8));
  // One chain 0-1-2-3-4 with exactly two pairs per link: nodes 1, 2, 3
  // each decide a swap, every pair of them conflicts (shared links).
  for (NodeId x = 0; x + 1 < 5; ++x) state.ledger().add(x, x + 1, 2);
  state.decide_swaps([&](NodeId x, MaxMinBalancer::Scratch& scratch) {
    return balancer.best_swap(state.ledger(), x, scratch);
  });
  ASSERT_TRUE(state.candidates()[1] && state.candidates()[2] &&
              state.candidates()[3]);
  std::vector<NodeId> order;
  const NetworkState::CommitStats stats = state.commit_swaps(
      balancer, /*first=*/1, /*round=*/0, /*attempt=*/0,
      [&](NodeId x, const SwapCandidate& candidate) {
        return balancer.is_preferable(state.ledger(), x, candidate.left,
                                      candidate.right);
      },
      [&](const NetworkState::CommittedSwap& swap) {
        order.push_back(swap.node);
      });
  // Node 1 commits first in rotating order, consuming a (0,1) and a (1,2)
  // pair; node 2's (1,2) donor is gone, so its re-check must fail; node
  // 3's donors (2,3)/(3,4) are untouched, so it commits.
  EXPECT_EQ(stats.swaps, 2u);
  EXPECT_EQ(order, (std::vector<NodeId>{1, 3}));
}

TEST(NetworkStateGeneration, KeyedStreamsAreShardInvariant) {
  const graph::Graph graph = graph::make_cycle(12);
  std::string reference;
  for (const std::uint32_t shards : {1u, 5u, 64u}) {
    NetworkState state(graph, 7, sharded(2, shards));
    std::uint64_t generated = 0;
    for (std::uint32_t round = 1; round <= 20; ++round) {
      generated += state.generate(round, 0.6, nullptr);
    }
    const std::string dump =
        ledger_dump(state.ledger()) + "#" + std::to_string(generated);
    if (reference.empty()) {
      reference = dump;
      EXPECT_GT(generated, 0u);
    } else {
      EXPECT_EQ(dump, reference) << "shards=" << shards;
    }
  }
}

TEST(NetworkStateDecay, TrackedPairsPurgeAndDecohere) {
  const graph::Graph graph = graph::make_cycle(6);
  NetworkState state(graph, 1, sharded(2, 4), DecayModel{50.0, 0.70});
  state.add_pair(0, 1, 0.0, 0.95);
  state.add_pair(0, 1, 5.0, 0.95);
  state.add_pair(2, 3, 0.0, 0.72);  // barely usable, dies quickly
  EXPECT_EQ(state.ledger().count(0, 1), 2u);
  // At t=6 the fresh pairs hold; the weak one has decayed below 0.70.
  EXPECT_EQ(state.decohere_all(6.0), 1u);
  EXPECT_EQ(state.ledger().count(2, 3), 0u);
  EXPECT_EQ(state.ledger().count(0, 1), 2u);
  // Freshest-first take returns the younger (higher-fidelity) pair.
  const TrackedPair taken = state.take_pair(0, 1, 6.0, /*freshest=*/true);
  EXPECT_EQ(taken.created, 5.0);
  EXPECT_EQ(state.ledger().count(0, 1), 1u);
  // Oldest-first returns the remaining original.
  const TrackedPair oldest = state.take_pair(0, 1, 6.0, /*freshest=*/false);
  EXPECT_EQ(oldest.created, 0.0);
  EXPECT_EQ(state.ledger().total_pairs(), 0u);
}

TEST(NetworkStateKernels, RequireShardedEngine) {
  const graph::Graph graph = graph::make_cycle(6);
  TickConcurrency sequential;  // default kSequential
  NetworkState state(graph, 1, sequential);
  const MaxMinBalancer balancer{core::DistillationMatrix(1.0)};
  EXPECT_THROW(
      state.decide_swaps([](NodeId, MaxMinBalancer::Scratch&) {
        return std::optional<SwapCandidate>{};
      }),
      PreconditionError);
  EXPECT_THROW((void)state.commit_swaps(
                   balancer, 0, 0, 0,
                   [](NodeId, const SwapCandidate&) { return true; }),
               PreconditionError);
  // Sequential generation needs its stream.
  EXPECT_THROW((void)state.generate(1, 0.5, nullptr), PreconditionError);
}

}  // namespace
}  // namespace poq::sim
