// The sparse pair-metadata stores (core::PairLedger's per-node partner
// rows, sim::PairStore's live-bucket map) must be observationally
// identical to the dense structures they replaced — under arbitrary
// insert/swap/decohere/erase churn, at every threads/shards setting, and
// without the O(n^2) footprint ever creeping back. The fuzz tests here
// drive both stores against brute-force dense reference models; the
// lockstep test cross-checks the protocols that own the churn
// ({balancing, fidelity} x threads {1,8} x shards {1,16}); the megascale
// test holds the real heap footprint at n ~ 10^5 to a fixed per-node
// byte bound, so a dense n(n-1)/2 array returning anywhere in the
// construction or round path fails loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "core/balancing_sim.hpp"
#include "core/ledger.hpp"
#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "scenario/protocol.hpp"
#include "sim/network_state.hpp"
#include "util/rng.hpp"

// --- allocation byte counter ------------------------------------------
// Same global operator new/delete discipline as the HotPathAllocations
// suite, extended to track *bytes requested*: the megascale test asserts
// a per-node byte bound over construction plus warm rounds, which is the
// ground truth no logical accounting can fake.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

// TSan's runtime allocates behind the program's back, so byte-bound
// assertions only hold uninstrumented (the fuzz tests still run under
// TSan — that is the point of putting this binary in the TSan leg).
#if defined(__SANITIZE_THREAD__)
#define POQ_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define POQ_UNDER_TSAN 1
#endif
#endif

namespace {
std::atomic<std::uint64_t> g_allocated_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  const auto alignment = static_cast<std::size_t>(align);
  const std::size_t rounded =
      (std::max<std::size_t>(size, 1) + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace poq {
namespace {

// --- ledger churn vs a dense reference --------------------------------

TEST(PairStoreChurn, LedgerFuzzMatchesDenseReference) {
  // Random add/remove churn on the sparse partner rows vs a dense n x n
  // count matrix: counts, totals, the minimum-over-pairs, and the
  // thresholded entanglement graph must agree after every operation
  // batch. Erasing rows to zero and re-inserting them exercises the
  // partner-slot insert/erase paths that the dense array never had.
  constexpr std::size_t kNodes = 24;
  util::Rng rng(0x5EED5);
  core::PairLedger ledger(kNodes);
  std::vector<std::vector<std::uint32_t>> dense(
      kNodes, std::vector<std::uint32_t>(kNodes, 0));

  for (int batch = 0; batch < 60; ++batch) {
    for (int op = 0; op < 40; ++op) {
      auto x = static_cast<core::NodeId>(rng.uniform_index(kNodes));
      auto y = static_cast<core::NodeId>(rng.uniform_index(kNodes - 1));
      if (y >= x) ++y;
      const auto amount = static_cast<std::uint32_t>(1 + rng.uniform_index(3));
      if (rng.bernoulli(0.55) || dense[x][y] == 0) {
        ledger.add(x, y, amount);
        dense[x][y] += amount;
        dense[y][x] += amount;
      } else {
        const std::uint32_t take = std::min(amount, dense[x][y]);
        ledger.remove(x, y, take);
        dense[x][y] -= take;
        dense[y][x] -= take;
      }
    }
    std::uint64_t total = 0;
    std::uint32_t minimum = 0xFFFFFFFFu;
    for (core::NodeId x = 0; x < kNodes; ++x) {
      for (core::NodeId y = x + 1; y < kNodes; ++y) {
        ASSERT_EQ(ledger.count(x, y), dense[x][y])
            << "batch " << batch << " pair (" << x << "," << y << ")";
        total += dense[x][y];
        minimum = std::min(minimum, dense[x][y]);
      }
    }
    ASSERT_EQ(ledger.total_pairs(), total) << "batch " << batch;
    ASSERT_EQ(ledger.minimum_pair_count(), minimum) << "batch " << batch;
    // Partner rows must hold exactly the nonzero pairs, both directions.
    for (core::NodeId x = 0; x < kNodes; ++x) {
      std::vector<core::NodeId> expected;
      for (core::NodeId y = 0; y < kNodes; ++y) {
        if (dense[x][y] > 0) expected.push_back(y);
      }
      const std::span<const core::NodeId> row = ledger.partners(x);
      ASSERT_EQ(std::vector<core::NodeId>(row.begin(), row.end()), expected)
          << "batch " << batch << " row " << x;
    }
    const graph::Graph entanglement = ledger.entanglement_graph(2);
    std::size_t expected_edges = 0;
    for (core::NodeId x = 0; x < kNodes; ++x) {
      for (core::NodeId y = x + 1; y < kNodes; ++y) {
        if (dense[x][y] >= 2) ++expected_edges;
      }
    }
    ASSERT_EQ(entanglement.edge_count(), expected_edges) << "batch " << batch;
  }
}

// --- tracked-pair churn vs a dense reference --------------------------

TEST(PairStoreChurn, TrackedPairFuzzMatchesDenseReference) {
  // Insert/swap-consume/decohere/erase churn on the decay-tracking
  // NetworkState vs a dense map-of-buckets reference. The reference
  // replays every operation with brute force (including the decohere
  // purge, using the state's own fidelity_now), so bucket contents,
  // ledger counts, and best-fidelity answers must stay identical.
  constexpr std::size_t kNodes = 16;
  util::Rng topology_rng(3);
  const graph::Graph graph = graph::make_random_connected_grid(kNodes, topology_rng);
  sim::TickConcurrency tick;
  tick.mode = sim::TickMode::kSharded;
  tick.threads = 2;
  tick.shards = 5;  // deliberately uneven node ranges
  sim::DecayModel decay;
  decay.memory_time_constant = 12.0;
  decay.usable_fidelity = 0.75;
  sim::NetworkState state(graph, 77, tick, decay);

  using Key = std::pair<core::NodeId, core::NodeId>;
  std::map<Key, std::vector<sim::TrackedPair>> reference;
  const auto key = [](core::NodeId x, core::NodeId y) {
    return x < y ? Key{x, y} : Key{y, x};
  };

  util::Rng rng(0xF1DE1);
  double now = 0.0;
  for (int batch = 0; batch < 50; ++batch) {
    now += 0.5;
    for (int op = 0; op < 30; ++op) {
      auto x = static_cast<core::NodeId>(rng.uniform_index(kNodes));
      auto y = static_cast<core::NodeId>(rng.uniform_index(kNodes - 1));
      if (y >= x) ++y;
      const Key k = key(x, y);
      const double roll = rng.uniform_double();
      if (roll < 0.55 || reference[k].empty()) {
        const double fidelity = 0.8 + 0.2 * rng.uniform_double();
        state.add_pair(x, y, now, fidelity);
        reference[k].push_back(sim::TrackedPair{now, fidelity});
      } else if (roll < 0.8) {
        // Swap-style consumption: take a pair under both policies.
        const bool freshest = rng.bernoulli(0.5);
        const sim::TrackedPair taken = state.take_pair(x, y, now, freshest);
        auto& bucket = reference[k];
        const auto it = std::find_if(
            bucket.begin(), bucket.end(), [&](const sim::TrackedPair& p) {
              return p.created == taken.created &&
                     p.initial_fidelity == taken.initial_fidelity;
            });
        ASSERT_NE(it, bucket.end())
            << "take_pair returned a pair the reference never stored";
        bucket.erase(it);
      } else {
        // Targeted erase of one bucket's decayed entries.
        const std::uint64_t dropped = state.purge_pair_type(x, y, now);
        auto& bucket = reference[k];
        const auto split = std::remove_if(
            bucket.begin(), bucket.end(), [&](const sim::TrackedPair& p) {
              return state.fidelity_now(p, now) < decay.usable_fidelity;
            });
        ASSERT_EQ(dropped,
                  static_cast<std::uint64_t>(bucket.end() - split));
        bucket.erase(split, bucket.end());
      }
    }
    if (batch % 5 == 4) {
      // Global decohere sweep (the resharded O(live pairs) kernel).
      std::uint64_t expected_drops = 0;
      for (auto& [k, bucket] : reference) {
        const auto split = std::remove_if(
            bucket.begin(), bucket.end(), [&](const sim::TrackedPair& p) {
              return state.fidelity_now(p, now) < decay.usable_fidelity;
            });
        expected_drops += static_cast<std::uint64_t>(bucket.end() - split);
        bucket.erase(split, bucket.end());
      }
      ASSERT_EQ(state.decohere_all(now), expected_drops) << "batch " << batch;
    }
    // Full dense cross-check: every pair's count and best fidelity.
    for (core::NodeId x = 0; x < kNodes; ++x) {
      for (core::NodeId y = x + 1; y < kNodes; ++y) {
        const auto it = reference.find(Key{x, y});
        const std::size_t expected = it == reference.end() ? 0 : it->second.size();
        ASSERT_EQ(state.ledger().count(x, y), expected)
            << "batch " << batch << " pair (" << x << "," << y << ")";
        double best = 0.0;
        if (it != reference.end()) {
          for (const sim::TrackedPair& p : it->second) {
            best = std::max(best, state.fidelity_now(p, now));
          }
        }
        ASSERT_DOUBLE_EQ(state.best_fidelity(x, y, now), best)
            << "batch " << batch << " pair (" << x << "," << y << ")";
      }
    }
  }
}

// --- protocol lockstep across the concurrency grid --------------------

std::string run_dump(scenario::ScenarioSpec spec, std::int64_t threads,
                     std::int64_t shards) {
  spec.knobs["threads"] = threads;
  spec.knobs["shards"] = shards;
  // to_json(false): phase_ms.* wall-clock is outside the contract.
  return scenario::registry().run(spec.protocol, spec).to_json(false).dump(2);
}

TEST(PairStoreChurn, ProtocolLockstepAcrossThreadsAndShards) {
  // The protocols that own the churn — balancing (ledger rows under
  // generate/swap/consume) and fidelity (tracked buckets under
  // add/take/decohere) — on randomized frames, across threads {1,8} x
  // shards {1,16}: the sparse stores must never let a worker schedule
  // leak into results.
  util::Rng fuzz(0xC4A2);
  for (int trial = 0; trial < 3; ++trial) {
    for (const std::string& protocol : {std::string("balancing"),
                                        std::string("fidelity")}) {
      scenario::ScenarioSpec spec;
      spec.protocol = protocol;
      spec.topology = fuzz.bernoulli(0.5) ? "random-grid" : "cycle";
      const std::size_t sizes[] = {9, 16, 25};
      spec.nodes = sizes[fuzz.uniform_index(3)];
      spec.consumer_pairs = 6 + fuzz.uniform_index(8);
      spec.requests = 20 + fuzz.uniform_index(20);
      spec.seed = 1 + fuzz.uniform_index(1000);
      if (protocol == "fidelity") {
        spec.knobs["duration"] = 40.0;
        spec.knobs["memory-T"] = 15.0;  // fast decay: decohere churn heavy
      } else {
        spec.knobs["max-rounds"] = std::int64_t{2000};
        spec.knobs["generation-rate"] = fuzz.bernoulli(0.5) ? 0.3 : 1.0;
        spec.knobs["distillation"] = 1.5;  // fractional rounding draws
      }
      const std::string reference = run_dump(spec, 1, 1);
      for (const std::int64_t threads : {1, 8}) {
        for (const std::int64_t shards : {1, 16}) {
          EXPECT_EQ(run_dump(spec, threads, shards), reference)
              << protocol << " trial " << trial << " diverged at threads="
              << threads << " shards=" << shards << "\nspec: "
              << spec.to_json().dump(2);
        }
      }
    }
  }
}

TEST(PairStoreChurn, StreamingWorkloadLockstep) {
  // Streaming arrivals ride the same sparse stores; the Poisson arrival
  // stream and the lazily derived pool pairs must be threads/shards
  // invariant, and the run must actually serve requests (satisfied > 0)
  // so the consumption path is exercised, not vacuously equal.
  scenario::ScenarioSpec spec;
  spec.protocol = "balancing";
  spec.topology = "full-grid";
  spec.nodes = 49;
  spec.consumer_pairs = 4;
  spec.requests = 1;
  spec.seed = 41;
  spec.knobs["arrival-rate"] = 2.0;
  spec.knobs["consumer-pool"] = std::int64_t{2000000};
  spec.knobs["max-rounds"] = std::int64_t{2000};
  spec.knobs["max-requests"] = std::int64_t{200};
  const std::string reference = run_dump(spec, 1, 1);
  const scenario::RunMetrics metrics = scenario::registry().run("balancing", spec);
  EXPECT_GT(metrics.scalar("satisfied"), 0.0) << "spec never served a request";
  EXPECT_GT(metrics.scalar("arrivals"), 0.0);
  EXPECT_GT(metrics.scalar("memory_bytes_per_node"), 0.0);
  for (const std::int64_t threads : {1, 8}) {
    for (const std::int64_t shards : {1, 16}) {
      EXPECT_EQ(run_dump(spec, threads, shards), reference)
          << "streaming run diverged at threads=" << threads
          << " shards=" << shards;
    }
  }
}

// --- megascale memory bound -------------------------------------------

TEST(MegascaleMemory, SparseTopologyStaysLinearAtHundredThousandNodes) {
  // n = 316^2 ~ 10^5 on a sparse torus: construction plus warm streaming
  // rounds must stay within a fixed heap budget per node. The old dense
  // pair array alone was n(n-1)/2 uint32 slots ~ 200 KB *per node* here;
  // the bound below is two orders of magnitude under that, so any dense
  // n^2 structure returning anywhere in the path trips it immediately.
  // Counted bytes are cumulative allocation requests (frees never
  // subtract), which upper-bounds the live footprint and keeps the
  // assertion deterministic.
#ifdef POQ_UNDER_TSAN
  GTEST_SKIP() << "the TSan runtime allocates behind the program's back, "
                  "so a heap byte bound is meaningless under it";
#endif
  constexpr std::size_t kNodes = 99856;  // 316^2
  const std::uint64_t before = g_allocated_bytes.load(std::memory_order_relaxed);
  const graph::Graph graph = graph::make_torus_grid(kNodes);
  util::Rng workload_rng(5);
  const core::Workload workload =
      core::make_uniform_workload(kNodes, 4, 1, workload_rng);
  core::BalancingConfig config;
  config.seed = 41;
  config.tick.mode = sim::TickMode::kSharded;
  config.arrival_rate = 8.0;
  config.consumer_pool = 2000000;
  config.max_rounds = 4;
  core::BalancingSimulation sim(graph, workload, config);
  const core::BalancingResult result = sim.run();
  const std::uint64_t after = g_allocated_bytes.load(std::memory_order_relaxed);

  EXPECT_EQ(result.rounds, 4u);
  const std::uint64_t heap_per_node = (after - before) / kNodes;
  EXPECT_LT(heap_per_node, 4096u)
      << "heap footprint regressed to " << heap_per_node
      << " bytes/node — a dense O(n^2) structure is back";
  // The deterministic logical accounting (what BENCH_megascale gates at
  // 1e-9) must agree on the order of magnitude.
  const std::uint64_t logical_per_node = sim.memory_bytes() / kNodes;
  EXPECT_GT(logical_per_node, 0u);
  EXPECT_LT(logical_per_node, 1024u);
}

}  // namespace
}  // namespace poq
