#include "sim/parallel_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"

namespace poq::sim {
namespace {

TEST(ShardRange, PartitionsExactlyAndContiguously) {
  for (const std::size_t items : {0u, 1u, 5u, 16u, 17u, 100u}) {
    for (const std::size_t shards : {1u, 2u, 7u, 16u, 32u}) {
      std::size_t covered = 0;
      std::size_t previous_end = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto [begin, end] =
            ParallelTickEngine::shard_range(items, shards, s);
        EXPECT_EQ(begin, previous_end);
        EXPECT_LE(begin, end);
        covered += end - begin;
        previous_end = end;
      }
      EXPECT_EQ(covered, items) << items << " items over " << shards;
      EXPECT_EQ(previous_end, items);
    }
  }
}

TEST(ShardRange, MoreShardsThanItemsLeavesTrailingShardsEmpty) {
  const auto [b0, e0] = ParallelTickEngine::shard_range(3, 8, 0);
  EXPECT_EQ(e0 - b0, 1u);
  const auto [b7, e7] = ParallelTickEngine::shard_range(3, 8, 7);
  EXPECT_EQ(b7, e7);  // empty
}

TEST(ShardRange, RejectsBadArguments) {
  EXPECT_THROW((void)ParallelTickEngine::shard_range(4, 0, 0), PreconditionError);
  EXPECT_THROW((void)ParallelTickEngine::shard_range(4, 2, 2), PreconditionError);
}

TEST(ParallelTickEngine, RunsEveryShardExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    ParallelTickEngine engine(threads);
    std::vector<std::atomic<int>> hits(23);
    engine.run_shards(hits.size(), [&](std::size_t shard) { ++hits[shard]; });
    for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ParallelTickEngine, ReusableAcrossManyPhases) {
  ParallelTickEngine engine(4);
  std::atomic<std::uint64_t> total{0};
  for (int phase = 0; phase < 200; ++phase) {
    engine.run_shards(7, [&](std::size_t shard) { total += shard; });
  }
  EXPECT_EQ(total.load(), 200u * (0 + 1 + 2 + 3 + 4 + 5 + 6));
}

TEST(ParallelTickEngine, ZeroShardsIsANoop) {
  ParallelTickEngine engine(2);
  bool touched = false;
  engine.run_shards(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelTickEngine, ShardExceptionsPropagateAfterDraining) {
  for (const unsigned threads : {1u, 4u}) {
    ParallelTickEngine engine(threads);
    EXPECT_THROW(
        engine.run_shards(9,
                          [&](std::size_t shard) {
                            if (shard == 4) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // The engine must stay usable after a failed phase.
    std::atomic<int> count{0};
    engine.run_shards(5, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 5);
  }
}

TEST(ParallelTickEngine, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(ParallelTickEngine::resolve_threads(0), 1u);
  EXPECT_EQ(ParallelTickEngine::resolve_threads(3), 3u);
}

TEST(ParallelTickEngine, ResolveShardsAutoIsBoundedAndExplicitPassesThrough) {
  ParallelTickEngine engine(2);
  EXPECT_EQ(engine.resolve_shards(5, 100), 5u);
  const std::size_t auto_shards = engine.resolve_shards(0, 100);
  EXPECT_GE(auto_shards, 1u);
  EXPECT_LE(auto_shards, 100u);
  // Tiny inputs never get more auto shards than items.
  EXPECT_LE(engine.resolve_shards(0, 3), 3u);
}

}  // namespace
}  // namespace poq::sim
