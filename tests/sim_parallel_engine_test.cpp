#include "sim/parallel_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"

namespace poq::sim {
namespace {

TEST(ShardRange, PartitionsExactlyAndContiguously) {
  for (const std::size_t items : {0u, 1u, 5u, 16u, 17u, 100u}) {
    for (const std::size_t shards : {1u, 2u, 7u, 16u, 32u}) {
      std::size_t covered = 0;
      std::size_t previous_end = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto [begin, end] =
            ParallelTickEngine::shard_range(items, shards, s);
        EXPECT_EQ(begin, previous_end);
        EXPECT_LE(begin, end);
        covered += end - begin;
        previous_end = end;
      }
      EXPECT_EQ(covered, items) << items << " items over " << shards;
      EXPECT_EQ(previous_end, items);
    }
  }
}

TEST(ShardRange, MoreShardsThanItemsLeavesTrailingShardsEmpty) {
  const auto [b0, e0] = ParallelTickEngine::shard_range(3, 8, 0);
  EXPECT_EQ(e0 - b0, 1u);
  const auto [b7, e7] = ParallelTickEngine::shard_range(3, 8, 7);
  EXPECT_EQ(b7, e7);  // empty
}

TEST(ShardRange, RejectsBadArguments) {
  EXPECT_THROW((void)ParallelTickEngine::shard_range(4, 0, 0), PreconditionError);
  EXPECT_THROW((void)ParallelTickEngine::shard_range(4, 2, 2), PreconditionError);
}

TEST(ParallelTickEngine, RunsEveryShardExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    ParallelTickEngine engine(threads);
    std::vector<std::atomic<int>> hits(23);
    engine.run_shards(hits.size(), [&](std::size_t shard) { ++hits[shard]; });
    for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ParallelTickEngine, ReusableAcrossManyPhases) {
  ParallelTickEngine engine(4);
  std::atomic<std::uint64_t> total{0};
  for (int phase = 0; phase < 200; ++phase) {
    engine.run_shards(7, [&](std::size_t shard) { total += shard; });
  }
  EXPECT_EQ(total.load(), 200u * (0 + 1 + 2 + 3 + 4 + 5 + 6));
}

TEST(ParallelTickEngine, ZeroShardsIsANoop) {
  ParallelTickEngine engine(2);
  bool touched = false;
  engine.run_shards(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelTickEngine, ShardExceptionsPropagateAfterDraining) {
  for (const unsigned threads : {1u, 4u}) {
    ParallelTickEngine engine(threads);
    EXPECT_THROW(
        engine.run_shards(9,
                          [&](std::size_t shard) {
                            if (shard == 4) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // The engine must stay usable after a failed phase.
    std::atomic<int> count{0};
    engine.run_shards(5, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 5);
  }
}

TEST(ParallelTickEngine, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(ParallelTickEngine::resolve_threads(0), 1u);
  EXPECT_EQ(ParallelTickEngine::resolve_threads(3), 3u);
}

TEST(ParallelTickEngine, ResolveShardsAutoIsBoundedAndExplicitPassesThrough) {
  ParallelTickEngine engine(2);
  EXPECT_EQ(engine.resolve_shards(5, 100), 5u);
  const std::size_t auto_shards = engine.resolve_shards(0, 100);
  EXPECT_GE(auto_shards, 1u);
  EXPECT_LE(auto_shards, 100u);
  // Tiny inputs never get more auto shards than items.
  EXPECT_LE(engine.resolve_shards(0, 3), 3u);
}

TEST(ParallelTickEngine, RunChunksCoversEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    ParallelTickEngine engine(threads);
    for (const std::size_t grain : {1u, 3u, 64u, 1000u}) {
      const std::size_t items = 137;
      std::vector<std::atomic<int>> hits(items);
      engine.run_chunks(items, grain, nullptr,
                        [&](std::size_t begin, std::size_t end, unsigned) {
                          // Chunk boundaries are canonical multiples of the
                          // grain regardless of which worker ran the chunk.
                          EXPECT_EQ(begin % grain, 0u);
                          EXPECT_LE(end - begin, grain);
                          for (std::size_t i = begin; i < end; ++i) ++hits[i];
                        });
      for (const auto& hit : hits) {
        EXPECT_EQ(hit.load(), 1) << threads << " threads, grain " << grain;
      }
    }
  }
}

TEST(ParallelTickEngine, RunChunksWorkerIndexStaysBelowThreadCount) {
  for (const unsigned threads : {1u, 3u}) {
    ParallelTickEngine engine(threads);
    std::atomic<bool> in_range{true};
    engine.run_chunks(500, 7, nullptr,
                      [&](std::size_t, std::size_t, unsigned worker) {
                        if (worker >= engine.thread_count()) in_range = false;
                      });
    EXPECT_TRUE(in_range.load());
  }
}

TEST(ParallelTickEngine, RunChunksZeroItemsIsANoop) {
  ParallelTickEngine engine(2);
  bool touched = false;
  engine.run_chunks(0, 8, nullptr,
                    [&](std::size_t, std::size_t, unsigned) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelTickEngine, RunChunksRejectsZeroGrain) {
  ParallelTickEngine engine(2);
  EXPECT_THROW(
      engine.run_chunks(4, 0, nullptr,
                        [](std::size_t, std::size_t, unsigned) {}),
      PreconditionError);
}

TEST(ParallelTickEngine, RunChunksExceptionsPropagateAndEngineStaysUsable) {
  for (const unsigned threads : {1u, 4u}) {
    ParallelTickEngine engine(threads);
    EXPECT_THROW(engine.run_chunks(90, 10, nullptr,
                                   [&](std::size_t begin, std::size_t,
                                       unsigned) {
                                     if (begin == 40) {
                                       throw std::runtime_error("boom");
                                     }
                                   }),
                 std::runtime_error);
    std::atomic<int> count{0};
    engine.run_chunks(30, 4, nullptr,
                      [&](std::size_t begin, std::size_t end, unsigned) {
                        count += static_cast<int>(end - begin);
                      });
    EXPECT_EQ(count.load(), 30);
  }
}

TEST(ParallelTickEngine, RunChunksAccumulatesChunkLoad) {
  ParallelTickEngine engine(2);
  ChunkLoad load;
  engine.run_chunks(100, 16, &load,
                    [](std::size_t begin, std::size_t end, unsigned) {
                      volatile std::uint64_t sink = 0;
                      for (std::size_t i = begin; i < end * 50; ++i) {
                        sink = sink + i;
                      }
                    });
  EXPECT_EQ(load.chunks, 7u);  // ceil(100 / 16)
  EXPECT_GE(load.total_ns, load.max_ns);
  EXPECT_GT(load.max_ns, 0u);
  EXPECT_GE(load.imbalance(), 1.0);
}

TEST(ChunkLoad, EmptyLoadReportsZeroImbalance) {
  const ChunkLoad load;
  EXPECT_EQ(load.imbalance(), 0.0);
}

TEST(ParallelTickEngine, ResolveGrainDefaultsAndExplicitShardSplit) {
  // shards == 0 (auto): the kernel's default grain wins.
  EXPECT_EQ(ParallelTickEngine::resolve_grain(0, 100000, 2048), 2048u);
  EXPECT_EQ(ParallelTickEngine::resolve_grain(0, 5, 256), 256u);
  // Explicit shard counts keep their meaning: grain = ceil(items / shards).
  EXPECT_EQ(ParallelTickEngine::resolve_grain(4, 100, 2048), 25u);
  EXPECT_EQ(ParallelTickEngine::resolve_grain(3, 100, 2048), 34u);
  // Never rounds down to a zero grain.
  EXPECT_EQ(ParallelTickEngine::resolve_grain(16, 3, 2048), 1u);
  EXPECT_GE(ParallelTickEngine::resolve_grain(0, 10, 0), 1u);
}

}  // namespace
}  // namespace poq::sim
