#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "util/error.hpp"

namespace poq::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, [&] { order.push_back(3); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(2.0, [&] { order.push_back(2); });
  while (auto event = queue.pop()) event->action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAtEqualTimes) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  while (auto event = queue.pop()) event->action();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  bool ran = false;
  const EventId id = queue.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));  // double cancel reports false
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, PendingCountsLiveEvents) {
  EventQueue queue;
  const EventId a = queue.schedule(1.0, [] {});
  queue.schedule(2.0, [] {});
  EXPECT_EQ(queue.pending(), 2u);
  queue.cancel(a);
  EXPECT_EQ(queue.pending(), 1u);
  (void)queue.pop();
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, PeekSkipsCancelled) {
  EventQueue queue;
  const EventId a = queue.schedule(1.0, [] {});
  queue.schedule(5.0, [] {});
  queue.cancel(a);
  ASSERT_TRUE(queue.peek_time().has_value());
  EXPECT_DOUBLE_EQ(*queue.peek_time(), 5.0);
}

TEST(EventQueue, RejectsEmptyAction) {
  EventQueue queue;
  EXPECT_THROW(queue.schedule(1.0, {}), PreconditionError);
}

TEST(Engine, AdvancesClockMonotonically) {
  Engine engine;
  std::vector<SimTime> times;
  engine.at(1.0, [&] { times.push_back(engine.now()); });
  engine.at(4.0, [&] { times.push_back(engine.now()); });
  engine.after(2.0, [&] { times.push_back(engine.now()); });
  engine.run();
  EXPECT_EQ(times, (std::vector<SimTime>{1.0, 2.0, 4.0}));
}

TEST(Engine, NestedSchedulingFromHandlers) {
  Engine engine;
  int fired = 0;
  engine.at(1.0, [&] {
    engine.after(1.0, [&] { ++fired; });
    engine.after(2.0, [&] { ++fired; });
  });
  engine.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, RunUntilStopsAtBound) {
  Engine engine;
  int fired = 0;
  engine.every(1.0, [&] {
    ++fired;
    return true;
  });
  engine.run(5.5);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(engine.now(), 5.5);
  // Continuing picks up where we left off.
  engine.run(7.0);
  EXPECT_EQ(fired, 7);
}

TEST(Engine, EveryStopsWhenActionReturnsFalse) {
  Engine engine;
  int fired = 0;
  engine.every(1.0, [&] {
    ++fired;
    return fired < 3;
  });
  engine.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, StopHaltsRun) {
  Engine engine;
  int fired = 0;
  engine.every(1.0, [&] {
    if (++fired == 4) engine.stop();
    return true;
  });
  engine.run(100.0);
  EXPECT_EQ(fired, 4);
}

TEST(Engine, CannotScheduleInThePast) {
  Engine engine;
  engine.at(5.0, [] {});
  engine.run();
  EXPECT_THROW(engine.at(1.0, [] {}), PreconditionError);
  EXPECT_THROW(engine.after(-1.0, [] {}), PreconditionError);
}

TEST(Engine, PoissonProcessHitsTargetRate) {
  Engine engine(42);
  int arrivals = 0;
  engine.poisson_process(2.0, [&] {
    ++arrivals;
    return true;
  });
  engine.run(1000.0);
  // Rate 2.0 over 1000 time units: ~2000 arrivals, allow 10%.
  EXPECT_NEAR(arrivals, 2000, 200);
}

TEST(Engine, PoissonProcessesAreIndependentStreams) {
  Engine a(7);
  Engine b(7);
  std::vector<SimTime> times_a;
  std::vector<SimTime> times_b;
  a.poisson_process(1.0, [&] {
    times_a.push_back(a.now());
    return times_a.size() < 50;
  });
  b.poisson_process(1.0, [&] {
    times_b.push_back(b.now());
    return times_b.size() < 50;
  });
  a.run();
  b.run();
  EXPECT_EQ(times_a, times_b);  // same seed => identical trajectories
}

TEST(Engine, MaxEventsBound) {
  Engine engine;
  int fired = 0;
  engine.every(1.0, [&] {
    ++fired;
    return true;
  });
  engine.run(Engine::kForever, 10);
  EXPECT_EQ(fired, 10);
}

}  // namespace
}  // namespace poq::sim
