// The vertex-program substrate contract (docs/ARCHITECTURE.md): the
// canonical message merge makes every inbox fold in a fixed order —
// (deliver epoch, send phase, sender, per-sender send index) — for every
// threads/shards setting, and the signaled-set makes changed-only
// recomputation exactly equivalent to recomputing every vertex every
// epoch. Both claims are checked with deliberately order-sensitive
// folds, so a merge-order or signaling slip cannot cancel out.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/parallel_engine.hpp"
#include "sim/vertex_program.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::sim {
namespace {

// --- SignalSet ---------------------------------------------------------

TEST(SignalSet, MarksDrainAscendingAndClear) {
  SignalSet signals(16);
  signals.signal(9);
  signals.signal(2);
  signals.signal(9);  // re-marking is idempotent
  signals.signal(14);
  EXPECT_TRUE(signals.test(9));
  EXPECT_FALSE(signals.test(3));
  EXPECT_EQ(signals.signaled_count(), 3u);
  signals.clear(9);
  EXPECT_FALSE(signals.test(9));
  std::vector<std::uint32_t> drained;
  EXPECT_EQ(signals.drain(drained), 2u);
  EXPECT_EQ(drained, (std::vector<std::uint32_t>{2, 14}));
  EXPECT_EQ(signals.signaled_count(), 0u);
}

TEST(SignalSet, BudgetOverflowLatchesToEverythingSignaled) {
  SignalSet signals(4);
  const std::size_t budget = 4 * SignalSet::kBudgetPerVertex;
  EXPECT_TRUE(signals.charge(budget));     // exactly spends the budget
  EXPECT_FALSE(signals.charge(1));         // one more latches
  EXPECT_TRUE(signals.overflowed());
  // Precision is gone: everything reads signaled, clears are no-ops.
  for (std::uint32_t v = 0; v < 4; ++v) EXPECT_TRUE(signals.test(v));
  signals.clear(1);
  EXPECT_TRUE(signals.test(1));
  EXPECT_EQ(signals.signaled_count(), 4u);
  std::vector<std::uint32_t> drained;
  EXPECT_EQ(signals.drain(drained), 4u);
  EXPECT_EQ(drained, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_FALSE(signals.overflowed());  // drain starts a fresh epoch
}

TEST(SignalSet, ResetBudgetConvertsLatchConservatively) {
  SignalSet signals(3);
  signals.signal(1);
  EXPECT_FALSE(signals.charge(1000));
  signals.reset_budget();
  // The latch became real marks on every vertex; the new epoch has its
  // budget back and precise clearing works again.
  EXPECT_FALSE(signals.overflowed());
  for (std::uint32_t v = 0; v < 3; ++v) EXPECT_TRUE(signals.test(v));
  EXPECT_TRUE(signals.charge(1));
  signals.clear(0);
  EXPECT_FALSE(signals.test(0));
  EXPECT_TRUE(signals.test(2));
}

// --- canonical message merge -------------------------------------------

/// One epoch's order-sensitive message workload: every vertex mails a
/// keyed pseudo-random batch to scattered targets at mixed delays, then a
/// serial phase mails a couple more. Receivers fold their inboxes with a
/// non-commutative hash, so any reordering changes the digest.
std::uint64_t run_digest(std::size_t vertex_count, unsigned threads,
                         std::size_t shards, bool sequential) {
  ParallelTickEngine pool(threads);
  VertexProgram<std::uint32_t> program(
      vertex_count, sequential ? nullptr : &pool,
      sequential ? 1 : pool.resolve_shards(shards, vertex_count));
  std::vector<std::uint64_t> fold(vertex_count, 1469598103934665603ull);
  const auto n = static_cast<std::uint32_t>(vertex_count);
  for (std::uint64_t epoch = 0; epoch < 8; ++epoch) {
    for (const std::uint32_t v : program.deliver(epoch)) {
      for (const std::uint32_t payload : program.inbox(v)) {
        fold[v] = fold[v] * 31 + payload;  // deliberately non-commutative
      }
    }
    program.run_kernel([&](std::size_t shard,
                           VertexProgram<std::uint32_t>::Context& ctx) {
      const auto [begin, end] = ParallelTickEngine::shard_range(
          vertex_count, program.shard_count(), shard);
      for (std::size_t i = begin; i < end; ++i) {
        const auto v = static_cast<std::uint32_t>(i);
        util::Rng rng = util::Rng::keyed(41, 0x766d7478, epoch, v);
        const std::uint64_t sends = rng.uniform_index(4);
        for (std::uint64_t k = 0; k < sends; ++k) {
          const auto target =
              static_cast<std::uint32_t>(rng.uniform_index(vertex_count));
          // Delay 0 exercises the >= 1 clamp of parallel sends.
          ctx.send(target, k % 3, static_cast<std::uint32_t>(v * 1000 + k));
        }
      }
    });
    // Serial-phase sends append after the sealed kernel, in call order.
    program.send(static_cast<std::uint32_t>(epoch % vertex_count), 1,
                 static_cast<std::uint32_t>(900000 + epoch));
    program.send(n - 1, 2, static_cast<std::uint32_t>(800000 + epoch));
  }
  std::uint64_t digest = 0;
  for (const std::uint64_t f : fold) digest = digest * 1099511628211ull + f;
  return digest;
}

TEST(VertexProgram, MergeOrderIsCanonicalAcrossThreadsAndShards) {
  const std::uint64_t reference = run_digest(24, 1, 1, /*sequential=*/false);
  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const std::size_t shards : {1u, 3u, 16u}) {
      EXPECT_EQ(run_digest(24, threads, shards, false), reference)
          << "digest drifted at threads=" << threads << " shards=" << shards;
    }
  }
}

TEST(VertexProgram, SequentialEngineIsTheOneShardSpecialCase) {
  EXPECT_EQ(run_digest(24, 1, 1, /*sequential=*/true),
            run_digest(24, 4, 7, /*sequential=*/false));
}

TEST(VertexProgram, SerialSendRejectsSameEpochDelivery) {
  VertexProgram<int> program(4, nullptr, 1);
  (void)program.deliver(0);
  EXPECT_THROW(program.send(2, 0, 7), PreconditionError);
  program.send(2, 1, 7);  // >= 1 is fine
  EXPECT_FALSE(program.idle());
}

TEST(VertexProgram, ParallelSendClampsToNextEpoch) {
  ParallelTickEngine pool(2);
  VertexProgram<int> program(4, &pool, 2);
  (void)program.deliver(0);
  program.run_kernel([&](std::size_t shard, VertexProgram<int>::Context& ctx) {
    if (shard == 0) ctx.send(3, 0, 42);  // clamped to delay 1
  });
  EXPECT_EQ(program.messages_sent(), 1u);
  const std::vector<std::uint32_t>& active = program.deliver(1);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], 3u);
  ASSERT_EQ(program.inbox(3).size(), 1u);
  EXPECT_EQ(program.inbox(3)[0], 42);
  EXPECT_EQ(program.messages_delivered(), 1u);
  EXPECT_TRUE(program.idle());
}

// --- changed-only signaling == full broadcast --------------------------

/// A miniature protocol with a cached per-vertex decision: the decision
/// is a pure function of the vertex's value, values change only through
/// keyed generation events and neighbor updates (messages), and every
/// change signals the vertex. Run changed-only (recompute signaled
/// vertices) against the full-broadcast reference (recompute everything,
/// every epoch): the decision trajectories must be identical.
std::vector<std::int64_t> run_decisions(bool changed_only) {
  constexpr std::size_t kVertices = 12;
  constexpr std::uint64_t kEpochs = 40;
  ParallelTickEngine pool(2);
  VertexProgram<std::int64_t> program(kVertices, &pool,
                                      pool.resolve_shards(3, kVertices));
  std::vector<std::int64_t> value(kVertices, 0);
  std::vector<std::int64_t> decision(kVertices, 0);
  std::vector<std::int64_t> trajectory;
  program.signals().signal_all();  // everything undecided at the start
  for (std::uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    for (const std::uint32_t v : program.deliver(epoch)) {
      for (const std::int64_t delta : program.inbox(v)) value[v] += delta;
      program.signals().signal(v);
    }
    // Generation: a keyed event bumps one vertex's value and mails a
    // fraction of the bump to its ring neighbor.
    util::Rng rng = util::Rng::keyed(7, 0x6d696e69, epoch, 0);
    const auto hit = static_cast<std::uint32_t>(rng.uniform_index(kVertices));
    value[hit] += 3;
    program.signals().signal(hit);
    program.send((hit + 1) % kVertices, 1 + epoch % 2, 1);
    // Decide: cached unless signaled (changed-only) or always (full).
    for (std::uint32_t v = 0; v < kVertices; ++v) {
      if (changed_only && !program.signals().test(v)) continue;
      decision[v] = value[v] * 2 - static_cast<std::int64_t>(v);
      program.signals().clear(v);
    }
    trajectory.insert(trajectory.end(), decision.begin(), decision.end());
    program.signals().reset_budget();
  }
  return trajectory;
}

TEST(VertexProgram, ChangedOnlySignalingMatchesFullBroadcast) {
  EXPECT_EQ(run_decisions(/*changed_only=*/true),
            run_decisions(/*changed_only=*/false));
}

}  // namespace
}  // namespace poq::sim
