#include "graph/topology.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/shortest_path.hpp"
#include "util/error.hpp"

namespace poq::graph {
namespace {

TEST(Topology, CycleStructure) {
  const Graph graph = make_cycle(6);
  EXPECT_EQ(graph.node_count(), 6u);
  EXPECT_EQ(graph.edge_count(), 6u);
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(graph.degree(v), 2u);
    EXPECT_TRUE(graph.has_edge(v, (v + 1) % 6));
  }
  EXPECT_TRUE(is_connected(graph));
}

TEST(Topology, CycleDiameterIsHalf) {
  const Graph graph = make_cycle(10);
  EXPECT_EQ(hop_distance(graph, 0, 5), 5u);
  EXPECT_EQ(hop_distance(graph, 0, 7), 3u);
}

TEST(Topology, PathStructure) {
  const Graph graph = make_path(5);
  EXPECT_EQ(graph.edge_count(), 4u);
  EXPECT_EQ(graph.degree(0), 1u);
  EXPECT_EQ(graph.degree(2), 2u);
  EXPECT_EQ(hop_distance(graph, 0, 4), 4u);
}

TEST(Topology, StarStructure) {
  const Graph graph = make_star(7);
  EXPECT_EQ(graph.edge_count(), 6u);
  EXPECT_EQ(graph.degree(0), 6u);
  for (NodeId v = 1; v < 7; ++v) EXPECT_EQ(graph.degree(v), 1u);
}

TEST(Topology, CompleteStructure) {
  const Graph graph = make_complete(6);
  EXPECT_EQ(graph.edge_count(), 15u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(graph.degree(v), 5u);
}

TEST(Topology, TorusGridStructure) {
  const Graph graph = make_torus_grid(25);
  EXPECT_EQ(graph.node_count(), 25u);
  EXPECT_EQ(graph.edge_count(), 50u);  // 2n edges on a torus
  for (NodeId v = 0; v < 25; ++v) EXPECT_EQ(graph.degree(v), 4u);
  EXPECT_TRUE(is_connected(graph));
}

TEST(Topology, TorusGridWraparound) {
  const Graph graph = make_torus_grid(25);
  // Node 0 = (0,0): right (0,1)=1, down (1,0)=5, wrap-left (0,4)=4,
  // wrap-up (4,0)=20.
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_TRUE(graph.has_edge(0, 5));
  EXPECT_TRUE(graph.has_edge(0, 4));
  EXPECT_TRUE(graph.has_edge(0, 20));
}

TEST(Topology, TorusRejectsNonSquare) {
  EXPECT_THROW(make_torus_grid(24), PreconditionError);
  EXPECT_THROW(make_torus_grid(4), PreconditionError);
}

TEST(Topology, RandomConnectedGridIsConnectedSubgraphOfTorus) {
  util::Rng rng(3);
  const Graph torus = make_torus_grid(49);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph graph = make_random_connected_grid(49, rng);
    EXPECT_TRUE(is_connected(graph));
    EXPECT_LE(graph.edge_count(), torus.edge_count());
    // Must be a subgraph of the full torus.
    for (const Edge& edge : graph.edges()) {
      EXPECT_TRUE(torus.has_edge(edge.a(), edge.b()));
    }
    // Spanning needs at least n-1 edges.
    EXPECT_GE(graph.edge_count(), 48u);
  }
}

TEST(Topology, RandomConnectedGridIsSparse) {
  // "added uniformly at random ... until connected" should stop well short
  // of the full torus on average.
  util::Rng rng(11);
  double total_edges = 0;
  for (int trial = 0; trial < 20; ++trial) {
    total_edges += static_cast<double>(make_random_connected_grid(25, rng).edge_count());
  }
  EXPECT_LT(total_edges / 20.0, 50.0);  // below the full 2n = 50
  EXPECT_GE(total_edges / 20.0, 24.0);  // at least a spanning tree
}

TEST(Topology, ErdosRenyiConnectedFlag) {
  util::Rng rng(5);
  const Graph graph = make_erdos_renyi(30, 0.3, rng, /*force_connected=*/true);
  EXPECT_TRUE(is_connected(graph));
}

TEST(Topology, ErdosRenyiZeroProbabilityEmpty) {
  util::Rng rng(5);
  const Graph graph = make_erdos_renyi(10, 0.0, rng);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(Topology, ErdosRenyiFullProbabilityComplete) {
  util::Rng rng(5);
  const Graph graph = make_erdos_renyi(10, 1.0, rng);
  EXPECT_EQ(graph.edge_count(), 45u);
}

TEST(Topology, WattsStrogatzPreservesEdgeCount) {
  util::Rng rng(7);
  const Graph graph = make_watts_strogatz(20, 2, 0.3, rng);
  // n*k edges from the lattice construction (rewired or kept, minus rare
  // collisions where a rewire target already existed).
  EXPECT_GE(graph.edge_count(), 35u);
  EXPECT_LE(graph.edge_count(), 40u);
}

TEST(Topology, WattsStrogatzZeroBetaIsLattice) {
  util::Rng rng(7);
  const Graph graph = make_watts_strogatz(12, 2, 0.0, rng);
  EXPECT_EQ(graph.edge_count(), 24u);
  for (NodeId v = 0; v < 12; ++v) EXPECT_EQ(graph.degree(v), 4u);
}

TEST(Topology, BarabasiAlbertDegreesAndConnectivity) {
  util::Rng rng(9);
  const Graph graph = make_barabasi_albert(50, 2, rng);
  EXPECT_TRUE(is_connected(graph));
  // Every arrival adds exactly m edges.
  EXPECT_EQ(graph.edge_count(), 2u + (50u - 3u) * 2u);
  for (NodeId v = 0; v < 50; ++v) EXPECT_GE(graph.degree(v), 1u);
}

TEST(Topology, FamilyDispatchProducesConnectedGraphs) {
  util::Rng rng(13);
  for (const TopologyFamily family :
       {TopologyFamily::kCycle, TopologyFamily::kRandomGrid, TopologyFamily::kFullGrid,
        TopologyFamily::kErdosRenyi, TopologyFamily::kWattsStrogatz,
        TopologyFamily::kBarabasiAlbert}) {
    const Graph graph = make_topology(family, 25, rng);
    EXPECT_TRUE(is_connected(graph)) << family_name(family);
    EXPECT_EQ(graph.node_count(), 25u) << family_name(family);
  }
}

TEST(Topology, FamilyParamsOverrideDefaults) {
  util::Rng rng(13);
  TopologyParams params;
  params.ws_k = 3;
  params.ws_beta = 0.0;
  // WS with beta=0 is the pure ring lattice: exactly n*k edges.
  const Graph ws = make_topology(TopologyFamily::kWattsStrogatz, 20, rng, params);
  EXPECT_EQ(ws.edge_count(), 20u * 3u);
  params = TopologyParams{};
  params.ba_m = 1;
  // BA with m=1 grows a tree: n-1 edges.
  const Graph ba = make_topology(TopologyFamily::kBarabasiAlbert, 20, rng, params);
  EXPECT_EQ(ba.edge_count(), 19u);
  params = TopologyParams{};
  params.er_p = 1.0;
  const Graph er = make_topology(TopologyFamily::kErdosRenyi, 10, rng, params);
  EXPECT_EQ(er.edge_count(), 45u);  // complete graph
  // Defaults unchanged when no params are passed.
  EXPECT_EQ(make_topology(TopologyFamily::kWattsStrogatz, 20, rng,
                          TopologyParams{})
                .node_count(),
            20u);
}

TEST(Topology, ParamAwareMinimumNodes) {
  TopologyParams params;
  params.ws_k = 4;
  EXPECT_EQ(min_topology_nodes(TopologyFamily::kWattsStrogatz, params), 9u);
  params = TopologyParams{};
  params.ba_m = 6;
  EXPECT_EQ(min_topology_nodes(TopologyFamily::kBarabasiAlbert, params), 7u);
  // The default-parameter overload is unchanged.
  EXPECT_EQ(min_topology_nodes(TopologyFamily::kWattsStrogatz), 5u);
  EXPECT_EQ(min_topology_nodes(TopologyFamily::kBarabasiAlbert), 3u);
}

TEST(Topology, FamilyNamesDistinct) {
  EXPECT_EQ(family_name(TopologyFamily::kCycle), "cycle");
  EXPECT_EQ(family_name(TopologyFamily::kRandomGrid), "random-grid");
  EXPECT_EQ(family_name(TopologyFamily::kFullGrid), "full-grid");
}

}  // namespace
}  // namespace poq::graph
