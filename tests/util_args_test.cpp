#include "util/args.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace poq::util {
namespace {

ArgParser parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, SpaceSeparatedValues) {
  const ArgParser args = parse({"--nodes", "25", "--seed", "7"});
  EXPECT_EQ(args.get_int("nodes", 0), 25);
  EXPECT_EQ(args.get_int("seed", 0), 7);
}

TEST(Args, EqualsSeparatedValues) {
  const ArgParser args = parse({"--rate=0.5", "--name=grid"});
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.5);
  EXPECT_EQ(args.get_string("name", ""), "grid");
}

TEST(Args, BareFlagsAreTrue) {
  const ArgParser args = parse({"--csv", "--verbose"});
  EXPECT_TRUE(args.get_bool("csv", false));
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("absent", false));
}

TEST(Args, ExplicitBooleans) {
  const ArgParser args = parse({"--a", "true", "--b", "false", "--c=1", "--d=0"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(Args, FallbacksWhenAbsent) {
  const ArgParser args = parse({});
  EXPECT_EQ(args.get_int("nodes", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 1.5), 1.5);
  EXPECT_EQ(args.get_string("name", "x"), "x");
}

TEST(Args, PositionalCollected) {
  const ArgParser args = parse({"balance", "--nodes", "9", "extra"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "balance");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(Args, NegativeNumbersAreValues) {
  const ArgParser args = parse({"--offset", "-3"});
  EXPECT_EQ(args.get_int("offset", 0), -3);
}

TEST(Args, RejectsMalformedNumbers) {
  const ArgParser args = parse({"--nodes", "abc"});
  EXPECT_THROW((void)args.get_int("nodes", 0), PreconditionError);
  const ArgParser args2 = parse({"--rate", "1.2.3"});
  EXPECT_THROW((void)args2.get_double("rate", 0.0), PreconditionError);
  const ArgParser args3 = parse({"--flag", "maybe"});
  EXPECT_THROW((void)args3.get_bool("flag", false), PreconditionError);
}

TEST(Args, UnusedDetectsTypos) {
  const ArgParser args = parse({"--nodes", "9", "--distilation", "2"});
  (void)args.get_int("nodes", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "distilation");
}

TEST(Args, HasMarksTouched) {
  const ArgParser args = parse({"--x", "1"});
  EXPECT_TRUE(args.has("x"));
  EXPECT_TRUE(args.unused().empty());
}

}  // namespace
}  // namespace poq::util
