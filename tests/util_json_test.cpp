#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace poq::util::json {
namespace {

TEST(Json, DumpScalars) {
  EXPECT_EQ(Value().dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(1.5).dump(), "1.5");
  EXPECT_EQ(Value(3).dump(), "3");
  EXPECT_EQ(Value("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersDumpAsNull) {
  EXPECT_EQ(Value(std::nan("")).dump(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_TRUE(Value(std::nan("")).is_null());
}

TEST(Json, NumbersRoundTripExactly) {
  for (const double value : {0.1, 1.0 / 3.0, 123456.789, -2.5e-8, 1e15}) {
    const Value parsed = Value::parse(Value(value).dump());
    EXPECT_EQ(parsed.as_number(), value);
  }
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Value object = Value::object();
  object.set("zebra", 1.0);
  object.set("apple", 2.0);
  object.set("mango", 3.0);
  EXPECT_EQ(object.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
  // Overwrite keeps the original position.
  object.set("zebra", 9.0);
  EXPECT_EQ(object.dump(), "{\"zebra\":9,\"apple\":2,\"mango\":3}");
}

TEST(Json, ParseNestedDocument) {
  const Value value = Value::parse(
      R"({"name": "fig5", "cells": [{"nodes": 9, "ok": true}, {"nodes": 16, "ok": false}], "extra": null})");
  EXPECT_EQ(value.at("name").as_string(), "fig5");
  EXPECT_EQ(value.at("cells").size(), 2u);
  EXPECT_EQ(value.at("cells").at(0).at("nodes").as_number(), 9.0);
  EXPECT_FALSE(value.at("cells").at(1).at("ok").as_bool());
  EXPECT_TRUE(value.at("extra").is_null());
  EXPECT_TRUE(value.contains("extra"));
  EXPECT_FALSE(value.contains("missing"));
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string text = "line1\nline2\t\"quoted\" \\slash";
  const Value parsed = Value::parse(Value(text).dump());
  EXPECT_EQ(parsed.as_string(), text);
  EXPECT_EQ(Value::parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(Json, PrettyDumpParsesBack) {
  Value list = Value::array();
  list.push_back(1.0);
  list.push_back("two");
  Value object = Value::object();
  object.set("list", std::move(list));
  object.set("nested", Value::object());
  const std::string pretty = object.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Value::parse(pretty), object);
}

TEST(Json, ParseErrorsAreActionable) {
  EXPECT_THROW(Value::parse("{"), PreconditionError);
  EXPECT_THROW(Value::parse("[1, 2,]"), PreconditionError);
  EXPECT_THROW(Value::parse("nul"), PreconditionError);
  EXPECT_THROW(Value::parse("1 2"), PreconditionError);
  EXPECT_THROW(Value::parse("\"unterminated"), PreconditionError);
  try {
    (void)Value::parse("{\"a\": }");
    FAIL() << "expected parse failure";
  } catch (const PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find("byte"), std::string::npos);
  }
}

TEST(Json, TypeMismatchThrows) {
  const Value number(1.0);
  EXPECT_THROW((void)number.as_string(), PreconditionError);
  EXPECT_THROW((void)number.at("key"), PreconditionError);
  const Value object = Value::object();
  EXPECT_THROW((void)object.at("missing"), PreconditionError);
  EXPECT_THROW((void)object.as_number(), PreconditionError);
}

TEST(Json, EqualityIsStructural) {
  const Value a = Value::parse(R"({"x": [1, 2], "y": "z"})");
  const Value b = Value::parse(R"({ "x" : [ 1 , 2 ] , "y" : "z" })");
  EXPECT_TRUE(a == b);
  const Value c = Value::parse(R"({"y": "z", "x": [1, 2]})");
  EXPECT_FALSE(a == c);  // member order is part of the document
}

TEST(Json, ParseErrorsCarryLineColumnAndCaretExcerpt) {
  try {
    (void)Value::parse("{\n  \"a\": 1,\n  \"b\": oops\n}");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("line 3"), std::string::npos) << message;
    EXPECT_NE(message.find("column 8"), std::string::npos) << message;
    EXPECT_NE(message.find("oops"), std::string::npos)
        << "excerpt should show the offending line: " << message;
    EXPECT_NE(message.find('^'), std::string::npos) << message;
  }
}

TEST(Json, ParseEofErrorNamesByteOffsetAndLine) {
  try {
    (void)Value::parse("{\"a\": [1, 2");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("unexpected end of input"), std::string::npos)
        << message;
    EXPECT_NE(message.find("at byte 11"), std::string::npos) << message;
    EXPECT_NE(message.find("line 1"), std::string::npos) << message;
  }
}

TEST(Json, ParseErrorExcerptClampsToTheOffendingLine) {
  const std::string long_line(200, ' ');
  try {
    (void)Value::parse("{\"key\":\n" + long_line + "@\n}");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("line 2"), std::string::npos) << message;
    // The caret line stays short even though the line is 200 bytes.
    const std::size_t caret = message.find('^');
    ASSERT_NE(caret, std::string::npos);
    const std::size_t caret_line = message.rfind('\n', caret);
    ASSERT_NE(caret_line, std::string::npos);
    EXPECT_LE(caret - caret_line, 64u);
  }
}

}  // namespace
}  // namespace poq::util::json
