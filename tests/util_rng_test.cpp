#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

#include "util/error.hpp"

namespace poq::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, ForkIsStable) {
  Rng parent(7);
  Rng child1 = parent.fork(3);
  Rng child2 = parent.fork(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1(), child2());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(7);
  Rng b(7);
  (void)a.fork(1);
  (void)a.fork(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DistinctStreamIdsGiveDistinctStreams) {
  Rng parent(7);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1() != c2()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(2, 1), PreconditionError);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntRoughlyUniform) {
  Rng rng(17);
  std::array<int, 10> buckets{};
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++buckets[rng.uniform_index(10)];
  for (int count : buckets) {
    EXPECT_NEAR(count, draws / 10, draws / 10 * 0.1);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(29);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(draws), 0.3, 0.01);
}

TEST(Rng, ExponentialHasCorrectMean) {
  Rng rng(31);
  double total = 0.0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) total += rng.exponential(2.0);
  EXPECT_NEAR(total / draws, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.exponential(-1.0), PreconditionError);
}

TEST(Rng, PoissonMatchesMeanSmall) {
  Rng rng(37);
  double total = 0.0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) total += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(total / draws, 3.5, 0.1);
}

TEST(Rng, PoissonMatchesMeanLarge) {
  Rng rng(41);
  double total = 0.0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) total += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(total / draws, 100.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(43);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / draws;
  const double variance = sum_sq / draws - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(variance, 4.0, 0.15);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(47);
  std::vector<int> data{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> copy = data;
  rng.shuffle(std::span<int>(data));
  std::sort(data.begin(), data.end());
  EXPECT_EQ(data, copy);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(53);
  const auto sample = rng.sample_indices(100, 35);
  EXPECT_EQ(sample.size(), 35u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 35u);
  for (std::size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(59);
  const auto sample = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleIndicesRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_indices(5, 6), PreconditionError);
}

TEST(Rng, KeyedStreamsAreDeterministic) {
  Rng a = Rng::keyed(42, 1, 2, 3);
  Rng b = Rng::keyed(42, 1, 2, 3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, KeyedStreamsDifferPerKeyWord) {
  const std::uint64_t reference = Rng::keyed(42, 1, 2, 3)();
  EXPECT_NE(Rng::keyed(43, 1, 2, 3)(), reference);
  EXPECT_NE(Rng::keyed(42, 9, 2, 3)(), reference);
  EXPECT_NE(Rng::keyed(42, 1, 9, 3)(), reference);
  EXPECT_NE(Rng::keyed(42, 1, 2, 9)(), reference);
  // Swapping key positions lands on a different stream too.
  EXPECT_NE(Rng::keyed(42, 2, 1, 3)(), reference);
}

// Counter-based streams have no shared state: drawing from one keyed
// stream never perturbs another, whatever the construction order.
TEST(Rng, KeyedStreamsAreIndependentOfConstructionOrder) {
  Rng first = Rng::keyed(7, 0, 1);
  const std::uint64_t early = first();
  Rng second = Rng::keyed(7, 0, 2);
  (void)second();
  Rng again = Rng::keyed(7, 0, 1);
  EXPECT_EQ(again(), early);
}

// Keyed streams should look uniform, not structured, even with adjacent
// counter values (the sharded engine keys streams by (round, entity)).
TEST(Rng, KeyedStreamsFromAdjacentCountersLookUniform) {
  int ones = 0;
  const int streams = 4000;
  for (int i = 0; i < streams; ++i) {
    Rng rng = Rng::keyed(5, 1, static_cast<std::uint64_t>(i), 0);
    if (rng.bernoulli(0.5)) ++ones;
  }
  EXPECT_NEAR(ones, streams / 2, streams * 0.05);
}

// --- batched keyed derivation: bit-equivalence with the scalar path ----

TEST(RngBatch, KeyedBatchMatchesScalarStreams) {
  std::vector<Rng> batch(257);
  Rng::keyed_batch(99, 7, 123, 1000, std::span<Rng>(batch));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Rng scalar = Rng::keyed(99, 7, 123, 1000 + i);
    for (int draw = 0; draw < 8; ++draw) {
      ASSERT_EQ(batch[i](), scalar()) << "stream " << i << " draw " << draw;
    }
  }
}

// The acceptance grid: >= 10^6 (seed, tag, round, entity) tuples, varied
// across every key word and across probabilities (including the scalar
// early-out edges), each compared against Rng::keyed(...).bernoulli(p).
TEST(RngBatch, BernoulliBatchMatchesScalarOverMillionTuples) {
  const std::vector<double> probabilities = {0.0,  1e-12, 0.037, 0.3,
                                             0.5,  0.7,   0.999, 1.0};
  Rng meta(2026);
  std::vector<std::uint8_t> batch(8192);
  std::uint64_t tuples = 0;
  std::uint64_t hits = 0;
  for (int block = 0; block < 128; ++block) {
    const std::uint64_t seed = meta();
    const std::uint64_t tag = meta();
    const std::uint64_t round = meta();
    const std::uint64_t base = meta() % 1000;  // entity counters overlap
    const double p = probabilities[block % probabilities.size()];
    Rng::bernoulli_batch(seed, tag, round, base, p,
                         std::span<std::uint8_t>(batch));
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const bool scalar = Rng::keyed(seed, tag, round, base + i).bernoulli(p);
      ASSERT_EQ(batch[i] != 0, scalar)
          << "seed=" << seed << " tag=" << tag << " round=" << round
          << " entity=" << base + i << " p=" << p;
      ++tuples;
      hits += batch[i];
    }
  }
  EXPECT_GE(tuples, 1000000u);
  EXPECT_GT(hits, 0u);  // the grid exercised both decision outcomes
  EXPECT_LT(hits, tuples);
}

TEST(RngBatch, PoissonBatchMatchesScalarOverMillionTuples) {
  // Means straddle the sampler's small/large split (Knuth product vs
  // normal approximation) plus the zero shortcut.
  const std::vector<double> means = {0.0, 0.2, 1.0, 3.5, 29.9, 30.0, 80.0};
  Rng meta(4052);
  std::vector<std::uint64_t> batch(8192);
  std::uint64_t tuples = 0;
  for (int block = 0; block < 128; ++block) {
    const std::uint64_t seed = meta();
    const std::uint64_t tag = meta();
    const std::uint64_t round = meta();
    const double mean = means[block % means.size()];
    Rng::poisson_batch(seed, tag, round, 0, mean,
                       std::span<std::uint64_t>(batch));
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(batch[i], Rng::keyed(seed, tag, round, i).poisson(mean))
          << "seed=" << seed << " tag=" << tag << " round=" << round
          << " entity=" << i << " mean=" << mean;
      ++tuples;
    }
  }
  EXPECT_GE(tuples, 1000000u);
}

TEST(RngBatch, EmptyBatchesAreLegal) {
  Rng::keyed_batch(1, 2, 3, 0, std::span<Rng>());
  Rng::bernoulli_batch(1, 2, 3, 0, 0.5, std::span<std::uint8_t>());
  Rng::poisson_batch(1, 2, 3, 0, 1.0, std::span<std::uint64_t>());
}

// Every element should be roughly equally likely to be sampled.
TEST(Rng, SampleIndicesUnbiased) {
  Rng rng(61);
  std::array<int, 20> hits{};
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t v : rng.sample_indices(20, 5)) ++hits[v];
  }
  const double expected = trials * 5.0 / 20.0;
  for (int count : hits) EXPECT_NEAR(count, expected, expected * 0.1);
}

}  // namespace
}  // namespace poq::util
