#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats stats;
  stats.add(4.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.5);
  EXPECT_DOUBLE_EQ(stats.min(), 4.5);
  EXPECT_DOUBLE_EQ(stats.max(), 4.5);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> data{1.0, 2.0, 2.0, 3.0, 7.5, -1.0, 0.0};
  RunningStats stats;
  double sum = 0.0;
  for (double x : data) {
    stats.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(data.size());
  double ss = 0.0;
  for (double x : data) ss += (x - mean) * (x - mean);
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), ss / static_cast<double>(data.size()), 1e-12);
  EXPECT_NEAR(stats.sample_variance(), ss / static_cast<double>(data.size() - 1),
              1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), -1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 7.5);
  EXPECT_NEAR(stats.sum(), sum, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats combined;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(3.0, 1.5);
    combined.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_NEAR(left.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), combined.min());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(2.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(Histogram, CountsAndClamping) {
  Histogram hist(0.0, 10.0, 5);
  hist.add(0.5);    // bucket 0
  hist.add(9.99);   // bucket 4
  hist.add(-3.0);   // clamped to bucket 0
  hist.add(42.0);   // clamped to bucket 4
  hist.add(5.0);    // bucket 2
  EXPECT_EQ(hist.total(), 5u);
  EXPECT_EQ(hist.bucket(0), 2u);
  EXPECT_EQ(hist.bucket(2), 1u);
  EXPECT_EQ(hist.bucket(4), 2u);
}

TEST(Histogram, BucketBoundaries) {
  Histogram hist(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(hist.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(hist.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(hist.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(hist.bucket_hi(4), 10.0);
}

TEST(Histogram, QuantileApproximatesUniform) {
  Histogram hist(0.0, 1.0, 100);
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) hist.add(rng.uniform_double());
  EXPECT_NEAR(hist.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(hist.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(hist.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

TEST(Percentile, ExactValues) {
  std::vector<double> data{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(data, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(data, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(data, 0.25), 2.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> data{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(data, 0.75), 7.5);
}

TEST(Percentile, RejectsEmpty) {
  EXPECT_THROW(percentile({}, 0.5), PreconditionError);
}

}  // namespace
}  // namespace poq::util
