#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace poq::util {
namespace {

TEST(Strings, StrCatMixesTypes) {
  EXPECT_EQ(str_cat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(str_cat(), "");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto fields = split("hello", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "hello");
}

TEST(Strings, TrimWhitespace) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("sigma_3", "sigma"));
  EXPECT_FALSE(starts_with("sig", "sigma"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace poq::util
