#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace poq::util {
namespace {

TEST(Table, PrintAlignsColumns) {
  Table table({"D", "overhead"});
  table.add_row({"1", "1.50"});
  table.add_row({"10", "123.45"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find(" D  overhead"), std::string::npos);
  EXPECT_NE(text.find("10    123.45"), std::string::npos);
}

TEST(Table, CsvRoundTripSimple) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table({"name"});
  table.add_row({"has,comma"});
  table.add_row({"has\"quote"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), PreconditionError);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(Table, RowCount) {
  Table table({"x"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

}  // namespace
}  // namespace poq::util
