// poqsim — command-line driver for the poqnet simulators.
//
// Thin shell over the unified scenario API: every subcommand except
// `list` and `sweep` is a registry lookup (scenario::registry()), the
// option surface is generated from the protocol's declared knob schema,
// and results print as the uniform RunMetrics key=value pairs. Adding a
// protocol to the registry adds it to the CLI with zero changes here.
//
// Subcommands:
//   <protocol>   run one scenario (balancing, planned, hybrid, gossip,
//                distributed, fidelity, lp — see `poqsim list`)
//   list         registered protocols with their knobs
//   sweep        grid sweep through the parallel SweepRunner: the
//                --nodes axis times any --axes over frame fields or
//                declared knobs, table or JSON output
//
// Common options: --topology cycle|random-grid|full-grid|erdos-renyi|
// watts-strogatz|barabasi-albert, --nodes N, --seed S, --pairs P,
// --requests R. Run `poqsim <protocol> --help` for the knob list.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "scenario/protocol.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace poq;

/// Historical subcommand spellings kept as aliases.
std::string canonical_protocol(const std::string& command) {
  if (command == "balance") return "balancing";
  return command;
}

/// Topology family parameters as CLI options: --topo-<name> sets the
/// spec's topology_params["<name>"]; validate_frame rejects parameters
/// the chosen family does not define.
constexpr const char* kTopologyParamNames[] = {"p", "k", "beta", "m"};

/// Fill the experiment frame from the common options. `sweep` owns the
/// --nodes axis itself (comma list), so it asks to skip that field.
scenario::ScenarioSpec parse_frame(const util::ArgParser& args,
                                   const std::string& protocol,
                                   bool read_nodes = true) {
  scenario::ScenarioSpec spec;
  spec.protocol = protocol;
  spec.topology = args.get_string("topology", "random-grid");
  for (const char* name : kTopologyParamNames) {
    const std::string option = std::string("topo-") + name;
    if (args.has(option)) {
      spec.topology_params[name] = args.get_double(option, 0.0);
    }
  }
  if (read_nodes) {
    const std::int64_t nodes = args.get_int("nodes", 25);
    if (nodes < 1) {
      throw PreconditionError("--nodes must be positive (got " +
                              std::to_string(nodes) + ")");
    }
    spec.nodes = static_cast<std::size_t>(nodes);
  }
  const std::int64_t pairs = args.get_int("pairs", 35);
  if (pairs < 1) throw PreconditionError("--pairs must be positive");
  spec.consumer_pairs = static_cast<std::size_t>(pairs);
  const std::int64_t requests = args.get_int("requests", 200);
  if (requests < 1) throw PreconditionError("--requests must be positive");
  spec.requests = static_cast<std::size_t>(requests);
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  return spec;
}

/// Forward every CLI option that names a declared knob into the overlay,
/// typed per the schema.
void parse_knobs(const util::ArgParser& args, const scenario::Protocol& protocol,
                 scenario::ScenarioSpec& spec) {
  for (const scenario::KnobSpec& knob : protocol.knobs()) {
    if (!args.has(knob.name)) continue;
    switch (knob.type) {
      case scenario::KnobType::kBool:
        spec.knobs[knob.name] = args.get_bool(knob.name, false);
        break;
      case scenario::KnobType::kInt:
        spec.knobs[knob.name] = args.get_int(knob.name, 0);
        break;
      case scenario::KnobType::kDouble:
        spec.knobs[knob.name] = args.get_double(knob.name, 0.0);
        break;
      case scenario::KnobType::kString:
        spec.knobs[knob.name] = args.get_string(knob.name, "");
        break;
    }
  }
}

void check_unused(const util::ArgParser& args) {
  const auto unused = args.unused();
  if (!unused.empty()) {
    throw PreconditionError("unknown option --" + unused.front());
  }
  if (!args.positional().empty()) {
    throw PreconditionError("unexpected argument '" + args.positional().front() +
                            "' (options are written --name value)");
  }
}

std::string scalar_text(double value) {
  if (value == std::floor(value) && std::abs(value) < 1.0e15) {
    return util::format_double(value, 0);
  }
  return util::format_double(value, 4);
}

/// Uniform key=value rendering of a run, a few pairs per line.
void print_metrics(const scenario::RunMetrics& metrics) {
  std::size_t on_line = 0;
  const auto emit = [&](const std::string& name, const std::string& value) {
    std::cout << name << '=' << value;
    if (++on_line == 4) {
      std::cout << '\n';
      on_line = 0;
    } else {
      std::cout << ' ';
    }
  };
  for (const auto& [name, value] : metrics.labels()) emit(name, value);
  for (const auto& [name, value] : metrics.scalars()) emit(name, scalar_text(value));
  for (const auto& [name, value] : metrics.timings()) {
    emit(name, util::format_double(value, 3));
  }
  if (on_line != 0) std::cout << '\n';
}

constexpr const char* kCommonOptionsHelp =
    "common options:\n"
    "  --topology F   cycle|random-grid|full-grid|erdos-renyi|\n"
    "                 watts-strogatz|barabasi-albert (default random-grid)\n"
    "  --topo-p X     erdos-renyi edge probability (default 2 ln n / n)\n"
    "  --topo-k K     watts-strogatz neighbours per side (default 2)\n"
    "  --topo-beta X  watts-strogatz rewiring probability (default 0.2)\n"
    "  --topo-m M     barabasi-albert edges per arrival (default 2)\n"
    "  --nodes N      node count (default 25; grid families need a\n"
    "                 perfect square >= 9)\n"
    "  --pairs P      consumer pairs (default 35, clamped to C(N,2))\n"
    "  --requests R   request backlog length (default 200)\n"
    "  --seed S       RNG seed (default 1)\n";

void print_protocol_help(const scenario::Protocol& protocol) {
  std::cout << "usage: poqsim " << protocol.name() << " [options]\n"
            << protocol.describe() << "\nknobs:\n";
  for (const scenario::KnobSpec& knob : protocol.knobs()) {
    std::cout << "  --" << util::pad_right(knob.name, 18) << knob.help
              << " (" << scenario::knob_type_name(knob.type) << ", default "
              << scenario::knob_value_text(knob.default_value) << ")\n";
  }
  std::cout << kCommonOptionsHelp;
}

int cmd_list(const util::ArgParser& args) {
  if (args.get_bool("json", false)) {
    check_unused(args);
    // Machine-readable listing: the same document the serve `list` op
    // returns, so tooling has one schema to parse.
    std::cout << scenario::registry_to_json(scenario::registry()).dump(2);
    return 0;
  }
  check_unused(args);
  for (const std::string& name : scenario::registry().names()) {
    const scenario::Protocol& protocol = scenario::registry().find(name);
    std::cout << util::pad_right(name, 14) << protocol.describe() << '\n';
  }
  return 0;
}

int cmd_run(const scenario::Protocol& protocol, const util::ArgParser& args) {
  scenario::ScenarioSpec spec = parse_frame(args, protocol.name());
  parse_knobs(args, protocol, spec);
  check_unused(args);
  print_metrics(scenario::registry().run(protocol.name(), spec));
  return 0;
}

/// `poqsim run --spec file.json`: fully file-driven experiments. The file
/// holds one ScenarioSpec as JSON (the same object `sweep --json` echoes
/// per cell), including the protocol, so an experiment is reproducible
/// from the file alone; --seed optionally overrides for replication.
scenario::ScenarioSpec load_spec_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw PreconditionError("cannot read spec file " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return scenario::ScenarioSpec::from_json(util::json::Value::parse(buffer.str()));
}

int cmd_run_spec(const util::ArgParser& args) {
  if (args.has("help")) {
    std::cout <<
        "usage: poqsim run --spec FILE.json [--seed S]\n"
        "Run the scenario described by a ScenarioSpec JSON file:\n"
        "  {\"protocol\": ..., \"topology\": ..., \"nodes\": ...,\n"
        "   \"consumer_pairs\": ..., \"requests\": ..., \"seed\": ...,\n"
        "   \"knobs\": {...}}  (+ optional \"topology_params\")\n"
        "  --spec FILE   the spec file (required)\n"
        "  --seed S      override the file's seed\n";
    return 0;
  }
  const std::string path = args.get_string("spec", "");
  if (path.empty()) throw PreconditionError("run: --spec FILE.json is required");
  scenario::ScenarioSpec spec = load_spec_file(path);
  if (args.has("seed")) {
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  }
  check_unused(args);
  print_metrics(scenario::registry().run(spec.protocol, spec));
  return 0;
}

std::size_t parse_positive_count(const std::string& item, const std::string& what) {
  // Digits only: std::stoull would accept "-9" (wrapping to ~1.8e19)
  // and silently ignore trailing garbage like "9junk".
  const bool digits = !item.empty() &&
                      item.find_first_not_of("0123456789") == std::string::npos;
  if (!digits || item.size() > 9) {
    throw PreconditionError(what + " entries must be positive integers (got '" +
                            item + "')");
  }
  const std::size_t value = std::stoull(item);
  if (value == 0) throw PreconditionError(what + " entries must be positive");
  return value;
}

std::vector<std::size_t> parse_node_list(const std::string& text) {
  std::vector<std::size_t> nodes;
  for (const std::string& field : util::split(text, ',')) {
    const std::string item(util::trim(field));
    if (item.empty()) continue;
    nodes.push_back(parse_positive_count(item, "--nodes"));
  }
  if (nodes.empty()) throw PreconditionError("--nodes list is empty");
  return nodes;
}

// ---------------------------------------------------------------------------
// Sweep axes: a sweep is a grid product over any spec fields, written
//   --axes "distillation=1,2,3;topology=cycle,full-grid"
// (--nodes LIST stays as the node-count axis). Frame fields (nodes,
// pairs, requests, seed, topology) apply to the spec frame; every other
// axis name must be a knob the protocol declares, and its values are
// parsed per the knob's declared type.
// ---------------------------------------------------------------------------

struct SweepAxis {
  std::string name;
  std::vector<std::string> values;  // raw texts, applied per cell
};

std::vector<SweepAxis> parse_axes(const std::string& text) {
  std::vector<SweepAxis> axes;
  for (const std::string& field : util::split(text, ';')) {
    const std::string entry(util::trim(field));
    if (entry.empty()) continue;
    const std::size_t equals = entry.find('=');
    if (equals == std::string::npos || equals == 0) {
      throw PreconditionError("--axes entries are written name=v1,v2,... (got '" +
                              entry + "')");
    }
    SweepAxis axis;
    axis.name = std::string(util::trim(entry.substr(0, equals)));
    for (const std::string& value : util::split(entry.substr(equals + 1), ',')) {
      const std::string item(util::trim(value));
      if (!item.empty()) axis.values.push_back(item);
    }
    if (axis.values.empty()) {
      throw PreconditionError("--axes axis '" + axis.name + "' has no values");
    }
    for (const SweepAxis& existing : axes) {
      if (existing.name == axis.name) {
        throw PreconditionError("--axes names axis '" + axis.name + "' twice");
      }
    }
    axes.push_back(std::move(axis));
  }
  if (axes.empty()) throw PreconditionError("--axes is empty");
  return axes;
}

scenario::KnobValue parse_knob_text(const scenario::KnobSpec& knob,
                                    const std::string& raw) {
  const auto fail = [&]() -> scenario::KnobValue {
    throw PreconditionError("axis '" + knob.name + "' expects " +
                            scenario::knob_type_name(knob.type) +
                            " values (got '" + raw + "')");
  };
  std::size_t used = 0;
  switch (knob.type) {
    case scenario::KnobType::kBool:
      if (raw == "true" || raw == "1") return true;
      if (raw == "false" || raw == "0") return false;
      return fail();
    case scenario::KnobType::kInt:
      try {
        const std::int64_t value = std::stoll(raw, &used);
        if (used != raw.size()) return fail();
        return value;
      } catch (const std::exception&) {
        return fail();
      }
    case scenario::KnobType::kDouble:
      try {
        const double value = std::stod(raw, &used);
        if (used != raw.size()) return fail();
        return value;
      } catch (const std::exception&) {
        return fail();
      }
    case scenario::KnobType::kString:
      return raw;
  }
  return fail();
}

void apply_axis_value(scenario::ScenarioSpec& spec,
                      const scenario::Protocol& protocol,
                      const std::string& name, const std::string& raw) {
  if (name == "nodes") {
    spec.nodes = parse_positive_count(raw, "axis nodes");
    return;
  }
  if (name == "pairs" || name == "consumer_pairs") {
    spec.consumer_pairs = parse_positive_count(raw, "axis pairs");
    return;
  }
  if (name == "requests") {
    spec.requests = parse_positive_count(raw, "axis requests");
    return;
  }
  if (name == "seed") {
    spec.seed = parse_positive_count(raw, "axis seed");
    return;
  }
  if (name == "topology") {
    (void)scenario::parse_topology_family(raw);  // validates, names families
    spec.topology = raw;
    return;
  }
  for (const char* param : kTopologyParamNames) {
    if (name != std::string("topo-") + param) continue;
    try {
      std::size_t used = 0;
      const double value = std::stod(raw, &used);
      if (used != raw.size()) throw std::invalid_argument(raw);
      spec.topology_params[param] = value;
    } catch (const std::exception&) {
      throw PreconditionError("axis '" + name + "' expects numeric values (got '" +
                              raw + "')");
    }
    return;
  }
  for (const scenario::KnobSpec& knob : protocol.knobs()) {
    if (knob.name == name) {
      spec.knobs[name] = parse_knob_text(knob, raw);
      return;
    }
  }
  throw PreconditionError(
      "axis '" + name + "' is neither a frame field (nodes, pairs, requests, "
      "seed, topology, topo-p/k/beta/m) nor a knob of protocol " +
      protocol.name());
}

/// Grid product in axis declaration order (last axis varies fastest).
std::vector<scenario::ScenarioSpec> build_axis_grid(
    const scenario::ScenarioSpec& base, const scenario::Protocol& protocol,
    const std::vector<SweepAxis>& axes) {
  std::vector<scenario::ScenarioSpec> grid{base};
  for (const SweepAxis& axis : axes) {
    std::vector<scenario::ScenarioSpec> expanded;
    expanded.reserve(grid.size() * axis.values.size());
    for (const scenario::ScenarioSpec& spec : grid) {
      for (const std::string& value : axis.values) {
        scenario::ScenarioSpec cell = spec;
        apply_axis_value(cell, protocol, axis.name, value);
        expanded.push_back(std::move(cell));
      }
    }
    grid = std::move(expanded);
  }
  return grid;
}

int cmd_sweep(const util::ArgParser& args) {
  if (args.has("help")) {
    std::cout <<
        "usage: poqsim sweep --protocol P [options] [protocol knobs]\n"
        "Run a grid sweep through the parallel SweepRunner. The grid is the\n"
        "product of the --nodes axis and every --axes axis.\n"
        "  --protocol P        registered protocol (default balancing)\n"
        "  --nodes LIST        node-count axis (default 9,16,25)\n"
        "  --axes \"a=1,2;b=x\"  extra axes over frame fields (nodes, pairs,\n"
        "                      requests, seed, topology) or declared knobs;\n"
        "                      values are typed per the knob schema\n"
        "  --seeds K           replications per cell (default 3)\n"
        "  --threads T         sweep pool threads (default: hardware)\n"
        "  --intra-threads K   intra-run threads per cell for ported\n"
        "                      protocols; auto pools divide by K (default 1)\n"
        "  --json              emit the aggregated cells as JSON\n"
        "  --metric M          table column metric (default overhead_paper)\n"
        "  --grid              pivot two axes into a 2-D table (rows x\n"
        "                      columns, like the paper figures); requires\n"
        "                      exactly two axes with more than one value\n"
              << kCommonOptionsHelp;
    return 0;
  }
  const std::string protocol_name =
      canonical_protocol(args.get_string("protocol", "balancing"));
  const scenario::Protocol& protocol = scenario::registry().find(protocol_name);
  const std::int64_t seeds = args.get_int("seeds", 3);
  if (seeds < 1 || seeds > 1000000) {
    throw PreconditionError("--seeds must be in [1, 1000000] (got " +
                            std::to_string(seeds) + ")");
  }
  const std::int64_t threads = args.get_int("threads", 0);
  if (threads < 0 || threads > 4096) {
    throw PreconditionError("--threads must be in [0, 4096] (got " +
                            std::to_string(threads) + ")");
  }
  const std::int64_t intra_threads = args.get_int("intra-threads", 1);
  if (intra_threads < 0 || intra_threads > 4096) {
    throw PreconditionError("--intra-threads must be in [0, 4096] (got " +
                            std::to_string(intra_threads) + ")");
  }
  scenario::SweepOptions options;
  options.seeds_per_cell = static_cast<std::uint32_t>(seeds);
  options.threads = static_cast<unsigned>(threads);
  options.intra_run_threads =
      intra_threads == 0 ? 0 : static_cast<unsigned>(intra_threads);
  const bool as_json = args.get_bool("json", false);
  const bool as_grid = args.get_bool("grid", false);
  const std::string metric = args.get_string("metric", "overhead_paper");
  if (as_json && as_grid) {
    throw PreconditionError("--grid renders a table; drop --json");
  }

  // Axes: --nodes is the outermost axis; --axes appends further ones.
  std::vector<SweepAxis> axes;
  {
    SweepAxis nodes_axis;
    nodes_axis.name = "nodes";
    for (const std::size_t n : parse_node_list(args.get_string("nodes", "9,16,25"))) {
      nodes_axis.values.push_back(std::to_string(n));
    }
    axes.push_back(std::move(nodes_axis));
  }
  if (args.has("axes")) {
    for (SweepAxis& axis : parse_axes(args.get_string("axes", ""))) {
      if (axis.name == "nodes") {
        throw PreconditionError(
            "axis 'nodes' is owned by --nodes; list the counts there");
      }
      axes.push_back(std::move(axis));
    }
  }

  scenario::ScenarioSpec base = parse_frame(args, protocol_name, false);
  parse_knobs(args, protocol, base);
  // `sweep` owns --threads as the pool size; the per-protocol 'threads'
  // knob (intra-run) is set via --intra-threads or a --axes axis, never
  // forwarded from --threads.
  base.knobs.erase("threads");
  check_unused(args);

  bool threads_axis = false;
  for (const SweepAxis& axis : axes) threads_axis |= axis.name == "threads";
  if (threads_axis && intra_threads != 1) {
    throw PreconditionError(
        "--intra-threads conflicts with a 'threads' axis in --axes; "
        "pick one source for the intra-run thread count");
  }

  std::vector<scenario::ScenarioSpec> grid = build_axis_grid(base, protocol, axes);
  if (intra_threads != 1 && !threads_axis) {
    scenario::apply_intra_run_threads(grid, static_cast<unsigned>(intra_threads));
  }
  const scenario::SweepRunner runner(options);
  const std::vector<scenario::CellAggregate> cells = runner.run(grid);

  if (as_json) {
    util::json::Value out = util::json::Value::array();
    for (const scenario::CellAggregate& cell : cells) out.push_back(cell.to_json());
    std::cout << out.dump(2);
    return 0;
  }
  if (as_grid) {
    // 2-D pivot, like the paper figures: the two axes with more than one
    // value become rows x columns; singleton axes are fixed context.
    std::vector<std::size_t> multi;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      if (axes[a].values.size() > 1) multi.push_back(a);
    }
    if (multi.size() != 2) {
      throw PreconditionError(
          "--grid needs exactly two axes with more than one value (got " +
          std::to_string(multi.size()) +
          "); pin the others to single values");
    }
    const SweepAxis& row_axis = axes[multi[0]];
    const SweepAxis& col_axis = axes[multi[1]];
    std::cout << metric << " (mean), " << row_axis.name << " rows x "
              << col_axis.name << " columns";
    for (std::size_t a = 0; a < axes.size(); ++a) {
      if (axes[a].values.size() == 1) {
        std::cout << ", " << axes[a].name << "=" << axes[a].values.front();
      }
    }
    std::cout << '\n';
    std::vector<std::string> header{row_axis.name + "\\" + col_axis.name};
    header.insert(header.end(), col_axis.values.begin(), col_axis.values.end());
    util::Table table(header);
    // Each (row, col) pair occurs exactly once in the grid product (the
    // other axes are singletons), so the odometer walk fills the matrix.
    std::vector<std::vector<std::string>> matrix(
        row_axis.values.size(),
        std::vector<std::string>(col_axis.values.size(), "n/a"));
    std::vector<std::size_t> cursor(axes.size(), 0);
    for (const scenario::CellAggregate& cell : cells) {
      if (cell.has(metric)) {
        matrix[cursor[multi[0]]][cursor[multi[1]]] =
            util::format_double(cell.at(metric).mean(), 4);
      }
      for (std::size_t a = axes.size(); a-- > 0;) {
        if (++cursor[a] < axes[a].values.size()) break;
        cursor[a] = 0;
      }
    }
    for (std::size_t r = 0; r < row_axis.values.size(); ++r) {
      std::vector<std::string> row{row_axis.values[r]};
      row.insert(row.end(), matrix[r].begin(), matrix[r].end());
      table.add_row(row);
    }
    table.print(std::cout);
    return 0;
  }
  std::vector<std::string> header;
  for (const SweepAxis& axis : axes) header.push_back(axis.name);
  header.insert(header.end(),
                {metric + " (mean)", "stddev", "runs", "wall_ms"});
  util::Table table(header);
  // Re-enumerate the axis products in grid order for the row labels.
  std::vector<std::size_t> cursor(axes.size(), 0);
  for (const scenario::CellAggregate& cell : cells) {
    std::vector<std::string> row;
    for (std::size_t a = 0; a < axes.size(); ++a) row.push_back(axes[a].values[cursor[a]]);
    const bool present = cell.has(metric);
    const util::RunningStats empty;
    const util::RunningStats& stats = present ? cell.at(metric) : empty;
    row.push_back(present ? util::format_double(stats.mean(), 4) : "n/a");
    row.push_back(present ? util::format_double(stats.stddev(), 4) : "n/a");
    row.push_back(std::to_string(stats.count()));
    row.push_back(util::format_double(cell.wall_ms, 1));
    table.add_row(row);
    // Odometer increment, last axis fastest (matches build_axis_grid).
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++cursor[a] < axes[a].values.size()) break;
      cursor[a] = 0;
    }
  }
  table.print(std::cout);
  return 0;
}

// ---------------------------------------------------------------------------
// serve / client: the long-running daemon and its reference client.
// ---------------------------------------------------------------------------

constexpr const char* kDefaultSocket = "/tmp/poqsim-serve.sock";

int cmd_serve(const util::ArgParser& args) {
  if (args.has("help")) {
    std::cout <<
        "usage: poqsim serve [--socket PATH] [--workers N] [--queue-depth D]\n"
        "                    [--sweep-threads T] [--intra-threads K]\n"
        "                    [--job-timeout SECS]\n"
        "Long-running simulation server: accepts jobs over a local AF_UNIX\n"
        "socket speaking newline-delimited JSON (see `poqsim client`), with a\n"
        "bounded job queue, cooperative cancellation and live per-task\n"
        "progress events. Blocks until a client sends the shutdown op.\n"
        "  --socket PATH      socket file (default " << kDefaultSocket << ")\n"
        "  --workers N        concurrent jobs (default 1)\n"
        "  --queue-depth D    queued jobs before submits are rejected with\n"
        "                     code queue_full (default 8)\n"
        "  --sweep-threads T  sweep pool threads per sweep job (default 1;\n"
        "                     0 = hardware)\n"
        "  --intra-threads K  intra-run threads per sweep cell (default 1;\n"
        "                     0 = hardware)\n"
        "  --job-timeout SECS per-job wall-clock budget; a job running past\n"
        "                     it is cancelled and fails with error \"timeout\"\n"
        "                     (default 0 = no deadline)\n";
    return 0;
  }
  serve::ServerOptions options;
  options.socket_path = args.get_string("socket", kDefaultSocket);
  const std::int64_t workers = args.get_int("workers", 1);
  if (workers < 1 || workers > 256) {
    throw PreconditionError("--workers must be in [1, 256]");
  }
  options.workers = static_cast<unsigned>(workers);
  const std::int64_t depth = args.get_int("queue-depth", 8);
  if (depth < 1 || depth > 4096) {
    throw PreconditionError("--queue-depth must be in [1, 4096]");
  }
  options.queue_depth = static_cast<std::size_t>(depth);
  const std::int64_t sweep_threads = args.get_int("sweep-threads", 1);
  if (sweep_threads < 0 || sweep_threads > 4096) {
    throw PreconditionError("--sweep-threads must be in [0, 4096]");
  }
  options.sweep_threads = static_cast<unsigned>(sweep_threads);
  const std::int64_t intra = args.get_int("intra-threads", 1);
  if (intra < 0 || intra > 4096) {
    throw PreconditionError("--intra-threads must be in [0, 4096]");
  }
  options.intra_run_threads = static_cast<unsigned>(intra);
  const double job_timeout = args.get_double("job-timeout", 0.0);
  if (job_timeout < 0.0 || job_timeout > 1.0e6) {
    throw PreconditionError("--job-timeout must be in [0, 1e6] seconds");
  }
  options.job_timeout = job_timeout;
  check_unused(args);
  serve::Server server(options);
  server.start();
  // Scripts wait for this line before connecting.
  std::cout << "poqsim serve: listening on " << options.socket_path
            << std::endl;
  server.wait();
  server.stop();
  std::cout << "poqsim serve: shut down\n";
  return 0;
}

/// Grid construction for `client sweep`: the same --nodes/--axes surface
/// as `poqsim sweep`, but the sweep executes inside the server.
std::vector<scenario::ScenarioSpec> build_client_grid(const util::ArgParser& args,
                                                      const std::string& name) {
  const scenario::Protocol& protocol = scenario::registry().find(name);
  std::vector<SweepAxis> axes;
  {
    SweepAxis nodes_axis;
    nodes_axis.name = "nodes";
    for (const std::size_t n :
         parse_node_list(args.get_string("nodes", "9,16,25"))) {
      nodes_axis.values.push_back(std::to_string(n));
    }
    axes.push_back(std::move(nodes_axis));
  }
  if (args.has("axes")) {
    for (SweepAxis& axis : parse_axes(args.get_string("axes", ""))) {
      if (axis.name == "nodes") {
        throw PreconditionError(
            "axis 'nodes' is owned by --nodes; list the counts there");
      }
      axes.push_back(std::move(axis));
    }
  }
  scenario::ScenarioSpec base = parse_frame(args, name, false);
  parse_knobs(args, protocol, base);
  return build_axis_grid(base, protocol, axes);
}

int cmd_client(const util::ArgParser& args) {
  if (args.has("help") || args.positional().empty()) {
    std::cout <<
        "usage: poqsim client <action> [options]\n"
        "Reference client for `poqsim serve`; prints the server's JSON reply\n"
        "(and, when watching, one event frame per line).\n"
        "actions:\n"
        "  submit    submit a run job: --spec FILE.json [--seed S] [--watch]\n"
        "  sweep     submit a sweep job: --protocol P --nodes LIST\n"
        "            [--axes \"a=1,2\"] [--seeds K] [--watch] + frame options\n"
        "  status    job table snapshot, or one job with --job N\n"
        "  watch     stream a job's events until it ends: --job N\n"
        "  cancel    request cancellation: --job N\n"
        "  reset     cancel everything and clear the job table\n"
        "  shutdown  stop the daemon\n"
        "  list      protocol/knob registry as JSON\n"
        "common: --socket PATH (default " << kDefaultSocket << ")\n"
        "        --retries N          retry transient failures (connect\n"
        "                             refused, queue_full) up to N times\n"
        "                             (default 0 = fail immediately)\n"
        "        --retry-base-ms MS   first retry delay; doubles per attempt,\n"
        "                             capped at 2000 ms (default 50)\n"
        "exit code: 0 on ok replies (and job_done/job_cancelled watches),\n"
        "1 on error replies, 2 when a watched job fails\n";
    return args.has("help") ? 0 : 1;
  }
  const std::string action = args.positional().front();
  if (args.positional().size() > 1) {
    throw PreconditionError("client: unexpected argument '" +
                            args.positional()[1] + "'");
  }
  using util::json::Value;
  Value request = Value::object();
  const bool watch = args.get_bool("watch", false);
  if (action == "submit") {
    const std::string path = args.get_string("spec", "");
    if (path.empty()) {
      throw PreconditionError("client submit: --spec FILE.json is required");
    }
    scenario::ScenarioSpec spec = load_spec_file(path);
    if (args.has("seed")) {
      spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    }
    request.set("op", "submit_run");
    request.set("spec", spec.to_json());
    request.set("watch", watch);
  } else if (action == "sweep") {
    const std::string protocol =
        canonical_protocol(args.get_string("protocol", "balancing"));
    const std::int64_t seeds = args.get_int("seeds", 3);
    if (seeds < 1 || seeds > 100000) {
      throw PreconditionError("--seeds must be in [1, 100000]");
    }
    Value grid = Value::array();
    for (const scenario::ScenarioSpec& cell : build_client_grid(args, protocol)) {
      grid.push_back(cell.to_json());
    }
    request.set("op", "submit_sweep");
    request.set("grid", std::move(grid));
    request.set("seeds_per_cell", static_cast<std::uint64_t>(seeds));
    request.set("watch", watch);
  } else if (action == "status" || action == "watch" || action == "cancel") {
    request.set("op", action);
    if (args.has("job")) {
      request.set("job", static_cast<std::uint64_t>(args.get_int("job", 0)));
    } else if (action != "status") {
      throw PreconditionError("client " + action + ": --job N is required");
    }
  } else if (action == "reset" || action == "shutdown" || action == "list") {
    request.set("op", action);
  } else {
    throw PreconditionError("client: unknown action '" + action +
                            "' (see `poqsim client --help`)");
  }
  const std::string socket = args.get_string("socket", kDefaultSocket);
  const std::int64_t retries = args.get_int("retries", 0);
  if (retries < 0 || retries > 1000) {
    throw PreconditionError("--retries must be in [0, 1000]");
  }
  const std::int64_t retry_base_ms = args.get_int("retry-base-ms", 50);
  if (retry_base_ms < 1 || retry_base_ms > 60000) {
    throw PreconditionError("--retry-base-ms must be in [1, 60000]");
  }
  {
    const auto unused = args.unused();
    if (!unused.empty()) {
      throw PreconditionError("unknown option --" + unused.front());
    }
  }

  // Transient failures — the daemon's socket not up yet, or a full job
  // queue — are retried with capped exponential backoff; every other
  // failure (and the final exhausted attempt) behaves exactly as with
  // --retries 0, so exit codes are unchanged.
  const auto backoff = [&](std::int64_t attempt) {
    const std::int64_t cap = 2000;
    std::int64_t delay = retry_base_ms;
    for (std::int64_t i = 0; i < attempt && delay < cap; ++i) delay *= 2;
    std::this_thread::sleep_for(std::chrono::milliseconds(std::min(delay, cap)));
  };
  std::unique_ptr<serve::Client> client;
  Value reply;
  for (std::int64_t attempt = 0;; ++attempt) {
    try {
      // A fresh Client per attempt: the frame reader must not carry bytes
      // of a half-dead connection into the next one.
      client = std::make_unique<serve::Client>(socket);
      client->connect();
      reply = client->request(request);
    } catch (const std::exception&) {
      if (attempt >= retries) throw;
      backoff(attempt);
      continue;
    }
    const bool transient = reply.is_object() && reply.contains("code") &&
                           reply.at("code").is_string() &&
                           reply.at("code").as_string() == "queue_full";
    if (transient && attempt < retries) {
      client->close();
      backoff(attempt);
      continue;
    }
    break;
  }
  std::cout << reply.dump() << '\n';
  if (!(reply.is_object() && reply.contains("ok") && reply.at("ok").is_bool() &&
        reply.at("ok").as_bool())) {
    return 1;
  }
  const bool streaming =
      action == "watch" || ((action == "submit" || action == "sweep") && watch);
  if (!streaming) return 0;
  const Value terminal = client->read_events(
      [](const Value& event) { std::cout << event.dump() << '\n'; });
  return terminal.at("event").as_string() == "job_failed" ? 2 : 0;
}

void print_usage() {
  std::cout << "usage: poqsim <subcommand> [options]\nprotocols:\n";
  for (const std::string& name : scenario::registry().names()) {
    std::cout << "  " << util::pad_right(name, 14)
              << scenario::registry().find(name).describe() << '\n';
  }
  std::cout <<
      "other subcommands:\n"
      "  list         registered protocols and their knobs (--json for machines)\n"
      "  run          run a ScenarioSpec JSON file (see `poqsim run --help`)\n"
      "  sweep        parallel grid sweep over any axes (see `poqsim sweep --help`)\n"
      "  serve        long-running job server on a local socket (see --help)\n"
      "  client       talk to a running server: submit/sweep/status/watch/\n"
      "               cancel/reset/shutdown/list (see `poqsim client --help`)\n"
      "common options: --topology <family> --nodes N --pairs P --requests R --seed S\n"
      "               --topo-p X --topo-k K --topo-beta X --topo-m M (family params)\n"
      "families: cycle random-grid full-grid erdos-renyi watts-strogatz barabasi-albert\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "--help") {
    print_usage();
    return argc < 2 ? 1 : 0;
  }
  try {
    const util::ArgParser args(argc - 1, argv + 1);
    const std::string command = canonical_protocol(argv[1]);
    if (command == "list") return cmd_list(args);
    if (command == "run") return cmd_run_spec(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "client") return cmd_client(args);
    if (!scenario::registry().contains(command)) {
      std::cerr << "unknown subcommand '" << command << "'\n";
      print_usage();
      return 1;
    }
    const scenario::Protocol& protocol = scenario::registry().find(command);
    if (args.has("help")) {
      print_protocol_help(protocol);
      return 0;
    }
    return cmd_run(protocol, args);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
