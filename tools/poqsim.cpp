// poqsim — command-line driver for the poqnet simulators.
//
// Subcommands:
//   balance      round-based §4/§5 max-min balancing
//   planned      connection-oriented / connectionless baselines
//   hybrid       §6 hybrid oblivious + minimal planning
//   gossip       §6 rotating partial knowledge
//   distributed  belief-based §4 with classical latency
//   fidelity     fidelity-aware event simulation (explicit decay/BBPSSW)
//   lp           §3 steady-state LP
//
// Common options: --topology cycle|random-grid|full-grid|erdos-renyi|
// watts-strogatz|barabasi-albert, --nodes N, --seed S, --pairs P,
// --requests R. Run `poqsim <subcommand> --help` for the full list.
#include <cmath>
#include <iostream>
#include <map>
#include <string>

#include "core/balancing_sim.hpp"
#include "core/distributed.hpp"
#include "core/fidelity_sim.hpp"
#include "core/gossip.hpp"
#include "core/hybrid.hpp"
#include "core/lp_formulation.hpp"
#include "core/planned_path.hpp"
#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

using namespace poq;

graph::TopologyFamily parse_family(const std::string& name) {
  if (name == "cycle") return graph::TopologyFamily::kCycle;
  if (name == "random-grid") return graph::TopologyFamily::kRandomGrid;
  if (name == "full-grid") return graph::TopologyFamily::kFullGrid;
  if (name == "erdos-renyi") return graph::TopologyFamily::kErdosRenyi;
  if (name == "watts-strogatz") return graph::TopologyFamily::kWattsStrogatz;
  if (name == "barabasi-albert") return graph::TopologyFamily::kBarabasiAlbert;
  throw PreconditionError("unknown --topology '" + name + "'");
}

struct CommonSetup {
  graph::Graph graph{0};
  core::Workload workload;
  std::uint64_t seed = 1;
};

std::size_t nearest_perfect_square(std::size_t n) {
  if (n <= 9) return 9;
  const auto side =
      static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  const std::size_t below = std::max<std::size_t>(side * side, 9);
  const std::size_t above = (side + 1) * (side + 1);
  return (n - below <= above - n) ? below : above;
}

/// Reject node counts the selected family cannot build, naming the flag
/// combination and the nearest valid count rather than letting the
/// generator die on its internal precondition. Minimums come from the
/// graph layer so they track the make_topology default parameters.
void validate_node_count(graph::TopologyFamily family,
                         const std::string& topology_name, std::size_t nodes) {
  const auto fail = [&](const std::string& requirement, std::size_t nearest) {
    throw PreconditionError(
        "--topology " + topology_name + " requires --nodes to be " +
        requirement + " (got " + std::to_string(nodes) +
        "; nearest valid count: " + std::to_string(nearest) + ")");
  };
  const std::size_t min_nodes = graph::min_topology_nodes(family);
  const bool grid = family == graph::TopologyFamily::kRandomGrid ||
                    family == graph::TopologyFamily::kFullGrid;
  if (grid) {
    const bool square_ok = [&] {
      if (nodes < min_nodes) return false;
      const auto side =
          static_cast<std::size_t>(std::sqrt(static_cast<double>(nodes)) + 0.5);
      return side * side == nodes;
    }();
    if (!square_ok) {
      fail("a perfect square >= " + std::to_string(min_nodes),
           nearest_perfect_square(nodes));
    }
  } else if (nodes < min_nodes) {
    fail("at least " + std::to_string(min_nodes), min_nodes);
  }
}

CommonSetup common_setup(const util::ArgParser& args) {
  CommonSetup setup;
  setup.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::int64_t nodes_raw = args.get_int("nodes", 25);
  if (nodes_raw < 1) {
    throw PreconditionError("--nodes must be positive (got " +
                            std::to_string(nodes_raw) + ")");
  }
  const auto nodes = static_cast<std::size_t>(nodes_raw);
  const std::string topology_name = args.get_string("topology", "random-grid");
  const auto family = parse_family(topology_name);
  validate_node_count(family, topology_name, nodes);
  util::Rng rng(setup.seed);
  setup.graph = graph::make_topology(family, nodes, rng);
  const std::size_t max_pairs = nodes * (nodes - 1) / 2;
  const auto pairs = std::min<std::size_t>(
      static_cast<std::size_t>(args.get_int("pairs", 35)), max_pairs);
  const auto requests = static_cast<std::size_t>(args.get_int("requests", 200));
  util::Rng workload_rng = rng.fork(42);
  setup.workload = core::make_uniform_workload(nodes, pairs, requests, workload_rng);
  return setup;
}

void check_unused(const util::ArgParser& args) {
  const auto unused = args.unused();
  if (!unused.empty()) {
    throw PreconditionError("unknown option --" + unused.front());
  }
  if (!args.positional().empty()) {
    throw PreconditionError("unexpected argument '" + args.positional().front() +
                            "' (options are written --name value)");
  }
}

int cmd_balance(const util::ArgParser& args) {
  const CommonSetup setup = common_setup(args);
  core::BalancingConfig config;
  config.distillation = args.get_double("distillation", 1.0);
  config.seed = setup.seed;
  config.max_rounds = static_cast<std::uint32_t>(args.get_int("max-rounds", 50000));
  config.swaps_per_node_per_round =
      static_cast<std::uint32_t>(args.get_int("swap-rate", 1));
  config.generation_per_edge_per_round = args.get_double("generation-rate", 1.0);
  if (args.has("detour-slack")) {
    config.policy.detour_slack =
        static_cast<std::uint32_t>(args.get_int("detour-slack", 0));
  }
  check_unused(args);
  const core::BalancingResult result =
      core::run_balancing(setup.graph, setup.workload, config);
  std::cout << "completed="            << (result.completed ? "yes" : "no")
            << " rounds="              << result.rounds
            << " satisfied="           << result.requests_satisfied
            << " swaps="               << result.swaps_performed
            << "\noverhead_paper="     << util::format_double(result.swap_overhead_paper(), 3)
            << " overhead_exact="      << util::format_double(result.swap_overhead_exact(), 3)
            << " mean_head_wait="      << util::format_double(result.head_wait_rounds.mean(), 2)
            << '\n';
  return 0;
}

int cmd_planned(const util::ArgParser& args) {
  const CommonSetup setup = common_setup(args);
  core::PlannedPathConfig config;
  config.distillation = args.get_double("distillation", 1.0);
  config.seed = setup.seed;
  config.window = static_cast<std::uint32_t>(args.get_int("window", 4));
  const std::string mode = args.get_string("mode", "oriented");
  if (mode == "connectionless") {
    config.mode = core::PlannedPathMode::kConnectionless;
  } else if (mode != "oriented") {
    throw PreconditionError("--mode must be oriented or connectionless");
  }
  check_unused(args);
  const core::PlannedPathResult result =
      core::run_planned_path(setup.graph, setup.workload, config);
  std::cout << "completed="        << (result.completed ? "yes" : "no")
            << " rounds="          << result.rounds
            << " satisfied="       << result.requests_satisfied
            << " swaps="           << util::format_double(result.swaps_performed, 1)
            << "\noverhead_paper=" << util::format_double(result.swap_overhead_paper(), 3)
            << " overhead_exact="  << util::format_double(result.swap_overhead_exact(), 3)
            << " mean_service="    << util::format_double(result.service_rounds.mean(), 2)
            << '\n';
  return 0;
}

int cmd_hybrid(const util::ArgParser& args) {
  const CommonSetup setup = common_setup(args);
  core::HybridConfig config;
  config.base.distillation = args.get_double("distillation", 1.0);
  config.base.seed = setup.seed;
  config.base.max_rounds =
      static_cast<std::uint32_t>(args.get_int("max-rounds", 50000));
  config.max_assist_hops =
      static_cast<std::uint32_t>(args.get_int("max-assist-hops", 8));
  check_unused(args);
  const core::HybridResult result =
      core::run_hybrid(setup.graph, setup.workload, config);
  std::cout << "completed="        << (result.base.completed ? "yes" : "no")
            << " rounds="          << result.base.rounds
            << " satisfied="       << result.base.requests_satisfied
            << "\noverhead_paper=" << util::format_double(result.base.swap_overhead_paper(), 3)
            << " assists="         << result.assists_succeeded << "/" << result.assists_attempted
            << " assist_swaps="    << util::format_double(result.assist_swaps, 0)
            << '\n';
  return 0;
}

int cmd_gossip(const util::ArgParser& args) {
  const CommonSetup setup = common_setup(args);
  core::GossipConfig config;
  config.base.distillation = args.get_double("distillation", 1.0);
  config.base.seed = setup.seed;
  config.base.max_rounds =
      static_cast<std::uint32_t>(args.get_int("max-rounds", 50000));
  config.fanout = static_cast<std::uint32_t>(args.get_int("fanout", 2));
  config.optimistic_peer = args.get_bool("optimistic-peer", true);
  config.latency_per_hop = args.get_double("latency", 1.0);
  check_unused(args);
  const core::GossipResult result =
      core::run_gossip(setup.graph, setup.workload, config);
  std::cout << "completed="        << (result.base.completed ? "yes" : "no")
            << " rounds="          << result.base.rounds
            << " satisfied="       << result.base.requests_satisfied
            << "\noverhead_paper=" << util::format_double(result.base.swap_overhead_paper(), 3)
            << " view_age="        << util::format_double(result.mean_view_age, 2)
            << " control_bytes="   << result.control_bytes
            << '\n';
  return 0;
}

int cmd_distributed(const util::ArgParser& args) {
  const CommonSetup setup = common_setup(args);
  core::DistributedConfig config;
  config.seed = setup.seed;
  config.latency_per_hop = args.get_double("latency", 0.1);
  config.duration = args.get_double("duration", 400.0);
  config.report_rate = args.get_double("report-rate", 1.0);
  check_unused(args);
  const core::DistributedResult result =
      core::run_distributed(setup.graph, setup.workload, config);
  std::cout << "satisfied="     << result.requests_satisfied
            << " swaps="        << result.swaps
            << " stale_swaps="  << util::format_double(100.0 * result.stale_swap_fraction(), 1) << "%"
            << " conflicts="    << util::format_double(100.0 * result.conflict_fraction(), 1) << "%"
            << "\nview_age="    << util::format_double(result.decision_view_age.mean(), 2)
            << " control_bytes=" << result.control_bytes
            << '\n';
  return 0;
}

int cmd_fidelity(const util::ArgParser& args) {
  const CommonSetup setup = common_setup(args);
  core::FidelitySimConfig config;
  config.seed = setup.seed;
  config.raw_fidelity = args.get_double("raw-fidelity", 0.97);
  config.app_fidelity = args.get_double("app-fidelity", 0.80);
  config.usable_fidelity = args.get_double("usable-fidelity", 0.70);
  config.memory_time_constant = args.get_double("memory-T", 100.0);
  config.duration = args.get_double("duration", 500.0);
  config.distillation_enabled = args.get_bool("distill", true);
  config.policy = args.get_string("pairing", "freshest") == "oldest"
                      ? core::PairingPolicy::kOldest
                      : core::PairingPolicy::kFreshest;
  check_unused(args);
  const core::FidelitySimResult result =
      core::run_fidelity_sim(setup.graph, setup.workload, config);
  std::cout << "satisfied="   << result.requests_satisfied
            << " swaps="      << result.swaps
            << " distills="   << result.distillations
            << "\nL_realized=" << util::format_double(result.realized_survival(), 3)
            << " D_realized=" << util::format_double(result.realized_distillation_overhead(), 2)
            << " mean_consumed_F="
            << (result.consumed_fidelity.count()
                    ? util::format_double(result.consumed_fidelity.mean(), 4)
                    : std::string("-"))
            << '\n';
  return 0;
}

int cmd_lp(const util::ArgParser& args) {
  const CommonSetup setup = common_setup(args);
  core::SteadyStateSpec spec;
  spec.node_count = setup.graph.node_count();
  const double gamma = args.get_double("gamma", 1.0);
  for (const graph::Edge& edge : setup.graph.edges()) {
    spec.generation_capacity.push_back(
        core::RatedPair{core::NodePair(edge.a(), edge.b()), gamma});
  }
  const double kappa = args.get_double("kappa", 0.1);
  for (const core::NodePair& pair : setup.workload.pairs) {
    spec.demand.push_back(core::RatedPair{pair, kappa});
  }
  spec.distillation = core::PairMatrix(args.get_double("distillation", 1.0));
  spec.survival = core::PairMatrix(args.get_double("survival", 1.0));
  spec.qec_overhead = args.get_double("qec", 1.0);
  const std::string objective_name = args.get_string("objective", "min-generation");
  check_unused(args);

  core::SteadyStateObjective objective;
  if (objective_name == "min-generation") {
    objective = core::SteadyStateObjective::kMinTotalGeneration;
  } else if (objective_name == "min-max-generation") {
    objective = core::SteadyStateObjective::kMinMaxGeneration;
  } else if (objective_name == "max-consumption") {
    objective = core::SteadyStateObjective::kMaxTotalConsumption;
  } else if (objective_name == "max-min-consumption") {
    objective = core::SteadyStateObjective::kMaxMinConsumption;
  } else if (objective_name == "max-scale") {
    objective = core::SteadyStateObjective::kMaxConcurrentScale;
  } else {
    throw PreconditionError("unknown --objective '" + objective_name + "'");
  }
  const core::SteadyStateLp lp(std::move(spec));
  const core::SteadyStateSolution solution = lp.solve(objective);
  std::cout << "status="        << lp::status_name(solution.status)
            << " objective="    << util::format_double(solution.objective, 4)
            << "\ntotal_generation=" << util::format_double(solution.total_generation, 3)
            << " total_consumption=" << util::format_double(solution.total_consumption, 3)
            << " total_swap_rate="   << util::format_double(solution.total_swap_rate, 3)
            << " active_swap_rules=" << solution.swap_rates.size()
            << '\n';
  return 0;
}

constexpr const char* kCommonOptionsHelp =
    "common options:\n"
    "  --topology F   cycle|random-grid|full-grid|erdos-renyi|\n"
    "                 watts-strogatz|barabasi-albert (default random-grid)\n"
    "  --nodes N      node count (default 25; grid families need a\n"
    "                 perfect square >= 9)\n"
    "  --pairs P      consumer pairs (default 35, clamped to C(N,2))\n"
    "  --requests R   request backlog length (default 200)\n"
    "  --seed S       RNG seed (default 1)\n";

/// Per-subcommand option summary for `poqsim <subcommand> --help`.
/// Returns false if the subcommand is unknown.
bool print_subcommand_help(const std::string& command) {
  static const std::map<std::string, const char*> help = {
      {"balance",
       "usage: poqsim balance [options]\n"
       "Round-based max-min balancing (paper Sections 4-5).\n"
       "  --distillation D     distillation overhead (default 1.0)\n"
       "  --max-rounds R       round budget (default 50000)\n"
       "  --swap-rate K        swaps per node per round (default 1)\n"
       "  --generation-rate G  pairs per edge per round (default 1.0)\n"
       "  --detour-slack H     extra hops tolerated by the swap policy\n"},
      {"planned",
       "usage: poqsim planned [options]\n"
       "Planned-path baselines.\n"
       "  --mode M         oriented|connectionless (default oriented)\n"
       "  --distillation D distillation overhead (default 1.0)\n"
       "  --window W       concurrent connections window (default 4)\n"},
      {"hybrid",
       "usage: poqsim hybrid [options]\n"
       "Balancing plus entanglement-path assist (Section 6).\n"
       "  --distillation D    distillation overhead (default 1.0)\n"
       "  --max-rounds R      round budget (default 50000)\n"
       "  --max-assist-hops H assist search radius (default 8)\n"},
      {"gossip",
       "usage: poqsim gossip [options]\n"
       "Partial-knowledge balancing (Section 6).\n"
       "  --distillation D   distillation overhead (default 1.0)\n"
       "  --max-rounds R     round budget (default 50000)\n"
       "  --fanout K         gossip fanout (default 2)\n"
       "  --optimistic-peer B assume-fresh peer views (default true)\n"
       "  --latency L        classical latency per hop (default 1.0)\n"},
      {"distributed",
       "usage: poqsim distributed [options]\n"
       "Belief-based protocol with classical latency (Section 2).\n"
       "  --latency L      classical latency per hop (default 0.1)\n"
       "  --duration T     simulated duration (default 400.0)\n"
       "  --report-rate R  belief report rate (default 1.0)\n"},
      {"fidelity",
       "usage: poqsim fidelity [options]\n"
       "Fidelity-aware event simulation (Section 3.2).\n"
       "  --raw-fidelity F     generated-pair fidelity (default 0.97)\n"
       "  --app-fidelity F     application target (default 0.80)\n"
       "  --usable-fidelity F  discard threshold (default 0.70)\n"
       "  --memory-T T         memory decay constant (default 100.0)\n"
       "  --duration T         simulated duration (default 500.0)\n"
       "  --distill B          enable BBPSSW distillation (default true)\n"
       "  --pairing P          freshest|oldest (default freshest)\n"},
      {"lp",
       "usage: poqsim lp [options]\n"
       "Steady-state linear program (Section 3).\n"
       "  --gamma G        generation capacity per edge (default 1.0)\n"
       "  --kappa K        demand per consumer pair (default 0.1)\n"
       "  --distillation D distillation matrix scalar (default 1.0)\n"
       "  --survival S     survival matrix scalar (default 1.0)\n"
       "  --qec Q          QEC overhead (default 1.0)\n"
       "  --objective O    min-generation|min-max-generation|max-consumption|\n"
       "                   max-min-consumption|max-scale (default min-generation)\n"},
  };
  const auto found = help.find(command);
  if (found == help.end()) return false;
  std::cout << found->second << kCommonOptionsHelp;
  return true;
}

void print_usage() {
  std::cout <<
      "usage: poqsim <subcommand> [options]\n"
      "subcommands:\n"
      "  balance      round-based max-min balancing (paper Sections 4-5)\n"
      "  planned      planned-path baselines (--mode oriented|connectionless)\n"
      "  hybrid       balancing + entanglement-path assist (Section 6)\n"
      "  gossip       partial-knowledge balancing (Section 6)\n"
      "  distributed  belief-based protocol with classical latency (Section 2)\n"
      "  fidelity     fidelity-aware event simulation (Section 3.2)\n"
      "  lp           steady-state linear program (Section 3)\n"
      "common options: --topology <family> --nodes N --pairs P --requests R --seed S\n"
      "families: cycle random-grid full-grid erdos-renyi watts-strogatz barabasi-albert\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "--help") {
    print_usage();
    return argc < 2 ? 1 : 0;
  }
  try {
    const util::ArgParser args(argc - 1, argv + 1);
    const std::string command = argv[1];
    if (args.has("help")) {
      if (print_subcommand_help(command)) return 0;
      std::cerr << "unknown subcommand '" << command << "'\n";
      print_usage();
      return 1;
    }
    if (command == "balance") return cmd_balance(args);
    if (command == "planned") return cmd_planned(args);
    if (command == "hybrid") return cmd_hybrid(args);
    if (command == "gossip") return cmd_gossip(args);
    if (command == "distributed") return cmd_distributed(args);
    if (command == "fidelity") return cmd_fidelity(args);
    if (command == "lp") return cmd_lp(args);
    std::cerr << "unknown subcommand '" << command << "'\n";
    print_usage();
    return 1;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
