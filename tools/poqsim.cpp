// poqsim — command-line driver for the poqnet simulators.
//
// Thin shell over the unified scenario API: every subcommand except
// `list` and `sweep` is a registry lookup (scenario::registry()), the
// option surface is generated from the protocol's declared knob schema,
// and results print as the uniform RunMetrics key=value pairs. Adding a
// protocol to the registry adds it to the CLI with zero changes here.
//
// Subcommands:
//   <protocol>   run one scenario (balancing, planned, hybrid, gossip,
//                distributed, fidelity, lp — see `poqsim list`)
//   list         registered protocols with their knobs
//   sweep        node-count sweep through the parallel SweepRunner,
//                table or JSON output
//
// Common options: --topology cycle|random-grid|full-grid|erdos-renyi|
// watts-strogatz|barabasi-albert, --nodes N, --seed S, --pairs P,
// --requests R. Run `poqsim <protocol> --help` for the knob list.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/protocol.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace poq;

/// Historical subcommand spellings kept as aliases.
std::string canonical_protocol(const std::string& command) {
  if (command == "balance") return "balancing";
  return command;
}

/// Fill the experiment frame from the common options. `sweep` owns the
/// --nodes axis itself (comma list), so it asks to skip that field.
scenario::ScenarioSpec parse_frame(const util::ArgParser& args,
                                   const std::string& protocol,
                                   bool read_nodes = true) {
  scenario::ScenarioSpec spec;
  spec.protocol = protocol;
  spec.topology = args.get_string("topology", "random-grid");
  if (read_nodes) {
    const std::int64_t nodes = args.get_int("nodes", 25);
    if (nodes < 1) {
      throw PreconditionError("--nodes must be positive (got " +
                              std::to_string(nodes) + ")");
    }
    spec.nodes = static_cast<std::size_t>(nodes);
  }
  const std::int64_t pairs = args.get_int("pairs", 35);
  if (pairs < 1) throw PreconditionError("--pairs must be positive");
  spec.consumer_pairs = static_cast<std::size_t>(pairs);
  const std::int64_t requests = args.get_int("requests", 200);
  if (requests < 1) throw PreconditionError("--requests must be positive");
  spec.requests = static_cast<std::size_t>(requests);
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  return spec;
}

/// Forward every CLI option that names a declared knob into the overlay,
/// typed per the schema.
void parse_knobs(const util::ArgParser& args, const scenario::Protocol& protocol,
                 scenario::ScenarioSpec& spec) {
  for (const scenario::KnobSpec& knob : protocol.knobs()) {
    if (!args.has(knob.name)) continue;
    switch (knob.type) {
      case scenario::KnobType::kBool:
        spec.knobs[knob.name] = args.get_bool(knob.name, false);
        break;
      case scenario::KnobType::kInt:
        spec.knobs[knob.name] = args.get_int(knob.name, 0);
        break;
      case scenario::KnobType::kDouble:
        spec.knobs[knob.name] = args.get_double(knob.name, 0.0);
        break;
      case scenario::KnobType::kString:
        spec.knobs[knob.name] = args.get_string(knob.name, "");
        break;
    }
  }
}

void check_unused(const util::ArgParser& args) {
  const auto unused = args.unused();
  if (!unused.empty()) {
    throw PreconditionError("unknown option --" + unused.front());
  }
  if (!args.positional().empty()) {
    throw PreconditionError("unexpected argument '" + args.positional().front() +
                            "' (options are written --name value)");
  }
}

std::string scalar_text(double value) {
  if (value == std::floor(value) && std::abs(value) < 1.0e15) {
    return util::format_double(value, 0);
  }
  return util::format_double(value, 4);
}

/// Uniform key=value rendering of a run, a few pairs per line.
void print_metrics(const scenario::RunMetrics& metrics) {
  std::size_t on_line = 0;
  const auto emit = [&](const std::string& name, const std::string& value) {
    std::cout << name << '=' << value;
    if (++on_line == 4) {
      std::cout << '\n';
      on_line = 0;
    } else {
      std::cout << ' ';
    }
  };
  for (const auto& [name, value] : metrics.labels()) emit(name, value);
  for (const auto& [name, value] : metrics.scalars()) emit(name, scalar_text(value));
  if (on_line != 0) std::cout << '\n';
}

constexpr const char* kCommonOptionsHelp =
    "common options:\n"
    "  --topology F   cycle|random-grid|full-grid|erdos-renyi|\n"
    "                 watts-strogatz|barabasi-albert (default random-grid)\n"
    "  --nodes N      node count (default 25; grid families need a\n"
    "                 perfect square >= 9)\n"
    "  --pairs P      consumer pairs (default 35, clamped to C(N,2))\n"
    "  --requests R   request backlog length (default 200)\n"
    "  --seed S       RNG seed (default 1)\n";

void print_protocol_help(const scenario::Protocol& protocol) {
  std::cout << "usage: poqsim " << protocol.name() << " [options]\n"
            << protocol.describe() << "\nknobs:\n";
  for (const scenario::KnobSpec& knob : protocol.knobs()) {
    std::cout << "  --" << util::pad_right(knob.name, 18) << knob.help
              << " (" << scenario::knob_type_name(knob.type) << ", default "
              << scenario::knob_value_text(knob.default_value) << ")\n";
  }
  std::cout << kCommonOptionsHelp;
}

int cmd_list() {
  for (const std::string& name : scenario::registry().names()) {
    const scenario::Protocol& protocol = scenario::registry().find(name);
    std::cout << util::pad_right(name, 13) << protocol.describe() << '\n';
  }
  return 0;
}

int cmd_run(const scenario::Protocol& protocol, const util::ArgParser& args) {
  scenario::ScenarioSpec spec = parse_frame(args, protocol.name());
  parse_knobs(args, protocol, spec);
  check_unused(args);
  print_metrics(scenario::registry().run(protocol.name(), spec));
  return 0;
}

std::vector<std::size_t> parse_node_list(const std::string& text) {
  std::vector<std::size_t> nodes;
  for (const std::string& field : util::split(text, ',')) {
    const std::string item(util::trim(field));
    if (item.empty()) continue;
    // Digits only: std::stoull would accept "-9" (wrapping to ~1.8e19)
    // and silently ignore trailing garbage like "9junk".
    const bool digits =
        item.find_first_not_of("0123456789") == std::string::npos;
    if (!digits || item.size() > 9) {
      throw PreconditionError("--nodes entries must be positive integers (got '" +
                              item + "')");
    }
    const std::size_t value = std::stoull(item);
    if (value == 0) throw PreconditionError("--nodes entries must be positive");
    nodes.push_back(value);
  }
  if (nodes.empty()) throw PreconditionError("--nodes list is empty");
  return nodes;
}

int cmd_sweep(const util::ArgParser& args) {
  if (args.has("help")) {
    std::cout <<
        "usage: poqsim sweep --protocol P [options] [protocol knobs]\n"
        "Run a node-count sweep through the parallel SweepRunner.\n"
        "  --protocol P   registered protocol (default balancing)\n"
        "  --nodes LIST   comma-separated node counts (default 9,16,25)\n"
        "  --seeds K      replications per cell (default 3)\n"
        "  --threads T    worker threads (default: hardware)\n"
        "  --json         emit the aggregated cells as JSON\n"
        "  --metric M     table column metric (default overhead_paper)\n"
              << kCommonOptionsHelp;
    return 0;
  }
  const std::string protocol_name =
      canonical_protocol(args.get_string("protocol", "balancing"));
  const scenario::Protocol& protocol = scenario::registry().find(protocol_name);
  const std::vector<std::size_t> node_counts =
      parse_node_list(args.get_string("nodes", "9,16,25"));
  const std::int64_t seeds = args.get_int("seeds", 3);
  if (seeds < 1 || seeds > 1000000) {
    throw PreconditionError("--seeds must be in [1, 1000000] (got " +
                            std::to_string(seeds) + ")");
  }
  const std::int64_t threads = args.get_int("threads", 0);
  if (threads < 0 || threads > 4096) {
    throw PreconditionError("--threads must be in [0, 4096] (got " +
                            std::to_string(threads) + ")");
  }
  scenario::SweepOptions options;
  options.seeds_per_cell = static_cast<std::uint32_t>(seeds);
  options.threads = static_cast<unsigned>(threads);
  const bool as_json = args.get_bool("json", false);
  const std::string metric = args.get_string("metric", "overhead_paper");

  scenario::ScenarioSpec base = parse_frame(args, protocol_name, false);
  parse_knobs(args, protocol, base);
  check_unused(args);

  std::vector<scenario::ScenarioSpec> grid;
  grid.reserve(node_counts.size());
  for (const std::size_t n : node_counts) {
    scenario::ScenarioSpec spec = base;
    spec.nodes = n;
    grid.push_back(std::move(spec));
  }
  const scenario::SweepRunner runner(options);
  const std::vector<scenario::CellAggregate> cells = runner.run(grid);

  if (as_json) {
    util::json::Value out = util::json::Value::array();
    for (const scenario::CellAggregate& cell : cells) out.push_back(cell.to_json());
    std::cout << out.dump(2);
    return 0;
  }
  util::Table table({"nodes", metric + " (mean)", "stddev", "runs", "wall_ms"});
  for (const scenario::CellAggregate& cell : cells) {
    const bool present = cell.has(metric);
    const util::RunningStats empty;
    const util::RunningStats& stats = present ? cell.at(metric) : empty;
    table.add_row({std::to_string(cell.spec.nodes),
                   present ? util::format_double(stats.mean(), 4) : "n/a",
                   present ? util::format_double(stats.stddev(), 4) : "n/a",
                   std::to_string(stats.count()),
                   util::format_double(cell.wall_ms, 1)});
  }
  table.print(std::cout);
  return 0;
}

void print_usage() {
  std::cout << "usage: poqsim <subcommand> [options]\nprotocols:\n";
  for (const std::string& name : scenario::registry().names()) {
    std::cout << "  " << util::pad_right(name, 13)
              << scenario::registry().find(name).describe() << '\n';
  }
  std::cout <<
      "other subcommands:\n"
      "  list         registered protocols and their knobs\n"
      "  sweep        parallel node-count sweep (see `poqsim sweep --help`)\n"
      "common options: --topology <family> --nodes N --pairs P --requests R --seed S\n"
      "families: cycle random-grid full-grid erdos-renyi watts-strogatz barabasi-albert\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "--help") {
    print_usage();
    return argc < 2 ? 1 : 0;
  }
  try {
    const util::ArgParser args(argc - 1, argv + 1);
    const std::string command = canonical_protocol(argv[1]);
    if (command == "list") return cmd_list();
    if (command == "sweep") return cmd_sweep(args);
    if (!scenario::registry().contains(command)) {
      std::cerr << "unknown subcommand '" << command << "'\n";
      print_usage();
      return 1;
    }
    const scenario::Protocol& protocol = scenario::registry().find(command);
    if (args.has("help")) {
      print_protocol_help(protocol);
      return 0;
    }
    return cmd_run(protocol, args);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
