// run_benches — machine-readable driver for the figure benches.
//
// Every suite is a grid of ScenarioSpecs fanned through the parallel
// scenario::SweepRunner (multi-seed cells used to run serially; the pool
// is the first real speedup lever for the figure sweeps) and lands in one
// unified BENCH_<suite>.json schema: per cell the full spec, the
// aggregated metrics (count/mean/stddev/min/max per scalar), and wall
// time. Suites cover the paper figures (Fig. 4/5) and the ablation /
// baseline / knowledge / fidelity studies that used to be table-only.
//
// Usage: run_benches [--quick] [--out-dir DIR] [--suite NAME] [--threads N]
//                    [--intra-threads K] [--check BASELINE.json] [--rel-tol X]
//                    [--poqsim PATH]
//   --quick     smaller sweeps and one seed per cell (the `bench` target's
//               default); omit for the full paper-scale grids
//   --out-dir   where to write BENCH_*.json (default: current directory)
//   --suite     run one suite (unique substring of its name; default all)
//   --threads   sweep worker threads (default 0 = hardware concurrency)
//   --intra-threads  intra-run threads for the ported protocols
//               (balancing/planned/hybrid); auto-sized pools divide by
//               this so pool x intra-run stays within the hardware budget
//   --check     after running, diff the matching suite's cells against a
//               committed baseline JSON with a relative tolerance; exits
//               nonzero on regression (the CI perf/correctness gate)
//   --rel-tol   relative tolerance for --check (default 0.2)
//   --poqsim    path to the poqsim binary, used by the serve suite's cold
//               per-process comparison (default ./poqsim; the cold timing
//               is skipped when the binary is missing)
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "scenario/protocol.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace {

using namespace poq;
using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

constexpr int kSchemaVersion = 2;

const std::vector<graph::TopologyFamily> kFigureFamilies = {
    graph::TopologyFamily::kCycle, graph::TopologyFamily::kRandomGrid,
    graph::TopologyFamily::kFullGrid};

struct SuiteRun {
  std::string name;
  std::uint32_t seeds = 1;
  /// Intra-run threads the cells actually ran with (suites that pin the
  /// sweep serial override the global --intra-threads).
  unsigned intra_threads = 1;
  std::vector<scenario::CellAggregate> cells;
  double total_wall_ms = 0.0;
};

struct Options {
  bool quick = false;
  std::string out_dir = ".";
  std::string suite_filter;  // empty = all
  unsigned threads = 0;
  /// Intra-run threads for ported protocols (balancing/planned/hybrid);
  /// the sweep pool's auto size divides by this so the two parallelism
  /// levels compose without oversubscription. Never changes the numbers.
  unsigned intra_threads = 1;
  std::string check_path;
  double rel_tol = 0.2;
  /// poqsim binary for the serve suite's cold-launch comparison.
  std::string poqsim = "./poqsim";
};

SuiteRun run_grid(const std::string& name, std::vector<scenario::ScenarioSpec> grid,
                  std::uint32_t seeds, const Options& options) {
  scenario::SweepOptions sweep;
  sweep.seeds_per_cell = seeds;
  sweep.threads = options.threads;
  if (options.intra_threads != 1) {
    scenario::apply_intra_run_threads(grid, options.intra_threads);
    sweep.intra_run_threads = options.intra_threads;
  }
  const scenario::SweepRunner runner(sweep);
  SuiteRun run;
  run.name = name;
  run.seeds = seeds;
  run.intra_threads = options.intra_threads;
  const Clock::time_point start = Clock::now();
  run.cells = runner.run(grid);
  run.total_wall_ms = elapsed_ms(start);
  return run;
}

util::json::Value suite_to_json(const SuiteRun& run, const Options& options) {
  using util::json::Value;
  Value out = Value::object();
  out.set("bench", run.name);
  out.set("schema_version", static_cast<double>(kSchemaVersion));
  Value config = Value::object();
  config.set("quick", options.quick);
  config.set("seeds", static_cast<double>(run.seeds));
  // Engine provenance for committed baselines: cells whose spec does not
  // pin `engine` ran the sharded default at this intra-run thread count
  // (the suite's own value — some suites pin it regardless of the flag).
  config.set("default_engine", "sharded");
  config.set("intra_threads", static_cast<double>(run.intra_threads));
  out.set("config", std::move(config));
  out.set("total_wall_ms", run.total_wall_ms);
  Value cells = Value::array();
  for (const scenario::CellAggregate& cell : run.cells) {
    cells.push_back(cell.to_json());
  }
  out.set("cells", std::move(cells));
  return out;
}

void write_suite(const SuiteRun& run, const Options& options) {
  const std::string path = options.out_dir + "/BENCH_" + run.name + ".json";
  std::ofstream file(path);
  if (!file) throw PreconditionError("cannot write " + path);
  file << suite_to_json(run, options).dump(2);
  std::cout << "wrote " << path << " (" << run.cells.size() << " cells, "
            << util::format_double(run.total_wall_ms, 0) << " ms)\n";
}

// ---------------------------------------------------------------------------
// Suites
// ---------------------------------------------------------------------------

scenario::ScenarioSpec finite_spec(const std::string& protocol, std::size_t nodes,
                                   std::size_t requests, std::uint64_t base_seed) {
  scenario::ScenarioSpec spec;
  spec.protocol = protocol;
  spec.topology = "random-grid";
  spec.nodes = nodes;
  spec.consumer_pairs = 35;
  spec.requests = requests;
  spec.seed = base_seed;
  spec.knobs["max-rounds"] = std::int64_t{400000};
  return spec;
}

SuiteRun suite_fig4(const Options& options) {
  bench::FigureSetup setup;
  setup.round_budget = options.quick ? 2000 : 6000;
  const std::uint32_t seeds = options.quick ? 1 : 3;
  const std::vector<double> distillations =
      options.quick ? std::vector<double>{1.0, 2.0, 3.0}
                    : std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<scenario::ScenarioSpec> grid;
  for (const double d : distillations) {
    for (const auto family : kFigureFamilies) {
      grid.push_back(bench::balancing_cell_spec(family, 25, d, setup));
    }
  }
  return run_grid("fig4_overhead_vs_distillation", std::move(grid), seeds, options);
}

SuiteRun suite_fig5(const Options& options) {
  bench::FigureSetup setup;
  setup.round_budget = options.quick ? 1000 : 3000;
  const std::uint32_t seeds = options.quick ? 1 : 3;
  const std::vector<std::size_t> sizes =
      options.quick ? std::vector<std::size_t>{9, 16, 25}
                    : std::vector<std::size_t>{9, 16, 25, 36, 49, 64, 81, 100};
  std::vector<scenario::ScenarioSpec> grid;
  for (const std::size_t n : sizes) {
    for (const auto family : kFigureFamilies) {
      grid.push_back(bench::balancing_cell_spec(family, n, 1.0, setup));
    }
  }
  return run_grid("fig5_overhead_vs_nodes", std::move(grid), seeds, options);
}

SuiteRun suite_ablation_variants(const Options& options) {
  const std::size_t requests = options.quick ? 40 : 120;
  const std::uint32_t seeds = options.quick ? 1 : 3;
  const std::vector<double> distillations =
      options.quick ? std::vector<double>{1.0, 2.0}
                    : std::vector<double>{1.0, 2.0, 3.0};
  std::vector<scenario::ScenarioSpec> grid;
  for (const double d : distillations) {
    scenario::ScenarioSpec plain = finite_spec("balancing", 25, requests, 3000);
    plain.knobs["distillation"] = d;
    grid.push_back(plain);
    for (const std::int64_t slack : {std::int64_t{0}, std::int64_t{2}}) {
      scenario::ScenarioSpec variant = plain;
      variant.knobs["detour-slack"] = slack;
      grid.push_back(variant);
    }
    scenario::ScenarioSpec hybrid = plain;
    hybrid.protocol = "hybrid";
    grid.push_back(hybrid);
  }
  return run_grid("ablation_variants", std::move(grid), seeds, options);
}

SuiteRun suite_baseline_comparison(const Options& options) {
  const std::size_t requests = options.quick ? 40 : 120;
  const std::uint32_t seeds = options.quick ? 1 : 3;
  const std::vector<double> distillations =
      options.quick ? std::vector<double>{1.0, 2.0}
                    : std::vector<double>{1.0, 2.0, 3.0};
  std::vector<scenario::ScenarioSpec> grid;
  for (const double d : distillations) {
    scenario::ScenarioSpec oblivious = finite_spec("balancing", 25, requests, 2000);
    oblivious.knobs["distillation"] = d;
    grid.push_back(oblivious);
    for (const char* mode : {"oriented", "connectionless"}) {
      scenario::ScenarioSpec planned = finite_spec("planned", 25, requests, 2000);
      planned.knobs.erase("max-rounds");  // planned keeps its own default
      planned.knobs["distillation"] = d;
      planned.knobs["window"] = std::int64_t{4};
      planned.knobs["mode"] = std::string(mode);
      grid.push_back(planned);
    }
  }
  return run_grid("baseline_comparison", std::move(grid), seeds, options);
}

SuiteRun suite_ablation_knowledge(const Options& options) {
  const std::size_t requests = options.quick ? 30 : 100;
  const std::uint32_t seeds = options.quick ? 1 : 3;
  std::vector<scenario::ScenarioSpec> grid;
  grid.push_back(finite_spec("balancing", 25, requests, 5000));
  for (const std::int64_t fanout : {1, 2, 4, 8}) {
    scenario::ScenarioSpec gossip = finite_spec("gossip", 25, requests, 5000);
    gossip.knobs["fanout"] = fanout;
    grid.push_back(gossip);
  }
  return run_grid("ablation_knowledge", std::move(grid), seeds, options);
}

SuiteRun suite_fidelity_decay(const Options& options) {
  const std::vector<double> time_constants =
      options.quick ? std::vector<double>{10.0, 50.0, 200.0}
                    : std::vector<double>{10.0, 25.0, 50.0, 100.0, 200.0, 1000.0};
  std::vector<scenario::ScenarioSpec> grid;
  for (const double time_constant : time_constants) {
    for (const char* pairing : {"freshest", "oldest"}) {
      scenario::ScenarioSpec spec;
      spec.protocol = "fidelity";
      spec.topology = "random-grid";
      spec.nodes = 16;
      spec.consumer_pairs = 12;
      spec.requests = 100000;
      spec.seed = 31;
      spec.knobs["memory-T"] = time_constant;
      spec.knobs["pairing"] = std::string(pairing);
      spec.knobs["duration"] = options.quick ? 200.0 : 600.0;
      grid.push_back(std::move(spec));
    }
  }
  return run_grid("fidelity_decay", std::move(grid), 1, options);
}

SuiteRun suite_parallel_scaling(const Options& options) {
  // Intra-run scaling on the largest Fig. 5 cell: the physics is fixed
  // and only the ported engine's `threads` knob sweeps, so per-cell
  // wall_ms isolates the intra-run speedup while the metrics double as a
  // cross-thread determinism gate (they must not move at all). The sweep
  // pool is pinned to one task at a time for honest wall-clock numbers.
  // Gossip and fidelity cells extend the gate to the full phase-kernel
  // registry: their sharded paths (canonical message merge, per-node
  // event sharding) must be thread-invariant too.
  bench::FigureSetup setup;
  setup.round_budget = options.quick ? 300 : 1500;
  const std::size_t nodes = options.quick ? 49 : 100;
  std::vector<scenario::ScenarioSpec> grid;
  for (const std::int64_t threads : {1, 2, 4, 8}) {
    scenario::ScenarioSpec spec = bench::balancing_cell_spec(
        graph::TopologyFamily::kRandomGrid, nodes, 1.0, setup);
    spec.knobs["threads"] = threads;
    grid.push_back(std::move(spec));
  }
  for (const std::int64_t threads : {1, 2, 4, 8}) {
    scenario::ScenarioSpec spec;
    spec.protocol = "gossip";
    spec.topology = "random-grid";
    spec.nodes = options.quick ? 25 : 49;
    spec.consumer_pairs = 20;
    spec.requests = options.quick ? 40 : 150;
    spec.seed = 71;
    spec.knobs["max-rounds"] = std::int64_t{400000};
    spec.knobs["threads"] = threads;
    grid.push_back(std::move(spec));
  }
  for (const std::int64_t threads : {1, 2, 4, 8}) {
    scenario::ScenarioSpec spec;
    spec.protocol = "fidelity";
    spec.topology = "random-grid";
    spec.nodes = 16;
    spec.consumer_pairs = 12;
    spec.requests = 100000;
    spec.seed = 72;
    spec.knobs["duration"] = options.quick ? 120.0 : 400.0;
    spec.knobs["memory-T"] = 50.0;
    spec.knobs["threads"] = threads;
    grid.push_back(std::move(spec));
  }
  Options serial = options;
  serial.threads = 1;
  serial.intra_threads = 1;  // the grid carries its own threads axis
  return run_grid("parallel_scaling", std::move(grid), 1, serial);
}

SuiteRun suite_hotpath(const Options& options) {
  // Steady-state hot-path gate: Fig.-5-style large sparse random grids,
  // swept decide=incremental vs decide=full at two generation regimes.
  //   * sparse (generation-rate 0.01, the steady-state headline): rare
  //     generation events only locally perturb the max-min operating
  //     point, the dirty frontier stays a handful of nodes, and the
  //     incremental decide carries the >= 2x round-throughput win
  //     (recorded by the committed baseline's wall_ms / phase timings;
  //     wall time is never *compared* by --check).
  //   * dense (generation-rate 1 on the largest quick Fig. 5 cell):
  //     every node's counts move every round, the frontier is
  //     everything, and the cells guard the marking overhead from
  //     regressing the dense path.
  // Cells pair up (same physics, different decide knob), so the 1e-9
  // --check gate doubles as an incremental == full equivalence gate, and
  // the per-phase timings land in each cell's "timings" object. The
  // backlog is trimmed so cell wall_ms measures the round loop, not the
  // workload build.
  bench::FigureSetup sparse_setup;
  sparse_setup.backlog = 10000;
  sparse_setup.round_budget = options.quick ? 6000 : 8000;
  const std::size_t sparse_nodes = options.quick ? 225 : 324;
  bench::FigureSetup dense_setup;
  dense_setup.backlog = 10000;
  dense_setup.round_budget = options.quick ? 500 : 1500;
  const std::size_t dense_nodes = options.quick ? 49 : 100;
  std::vector<scenario::ScenarioSpec> grid;
  for (const bool sparse : {true, false}) {
    for (const char* decide : {"incremental", "full"}) {
      scenario::ScenarioSpec spec = bench::balancing_cell_spec(
          graph::TopologyFamily::kRandomGrid, sparse ? sparse_nodes : dense_nodes,
          1.0, sparse ? sparse_setup : dense_setup);
      if (sparse) spec.knobs["generation-rate"] = 0.01;
      spec.knobs["decide"] = std::string(decide);
      grid.push_back(std::move(spec));
    }
  }
  Options serial = options;
  serial.threads = 1;        // one cell at a time: honest wall_ms
  serial.intra_threads = 1;  // the decide knob is the only axis
  return run_grid("hotpath", std::move(grid), 1, serial);
}

SuiteRun suite_async_routing(const Options& options) {
  // Asynchronous entanglement routing: a Poisson request stream resolved
  // continuously on the vertex-program substrate. The grid crosses
  // arrival pressure against entanglement supply, with a handoff-latency
  // axis — the satisfied/dropped fractions and request latency trace how
  // the greedy segment-following protocol degrades under scarcity.
  const std::uint32_t seeds = options.quick ? 1 : 3;
  const std::size_t nodes = options.quick ? 25 : 49;
  const double duration = options.quick ? 150.0 : 400.0;
  const std::vector<double> arrival_rates =
      options.quick ? std::vector<double>{0.4, 1.0}
                    : std::vector<double>{0.25, 0.5, 1.0};
  const std::vector<double> generation_rates =
      options.quick ? std::vector<double>{0.6, 1.5}
                    : std::vector<double>{0.5, 1.0, 2.0};
  const std::vector<double> latencies = options.quick
                                            ? std::vector<double>{0.1, 1.0}
                                            : std::vector<double>{0.1, 0.5, 2.0};
  std::vector<scenario::ScenarioSpec> grid;
  for (const double arrival : arrival_rates) {
    for (const double generation : generation_rates) {
      for (const double latency : latencies) {
        scenario::ScenarioSpec spec;
        spec.protocol = "async_routing";
        spec.topology = "random-grid";
        spec.nodes = nodes;
        spec.consumer_pairs = 20;
        spec.requests = 100000;  // the stream never exhausts the sequence
        spec.seed = 17;
        spec.knobs["arrival-rate"] = arrival;
        spec.knobs["generation-rate"] = generation;
        spec.knobs["latency"] = latency;
        spec.knobs["duration"] = duration;
        grid.push_back(std::move(spec));
      }
    }
  }
  return run_grid("async_routing", std::move(grid), seeds, options);
}

// The serve suite's job mix: one cheap cell per protocol family so a warm
// server request exercises every engine path the daemon can dispatch.
std::vector<scenario::ScenarioSpec> serve_job_grid(bool quick) {
  std::vector<scenario::ScenarioSpec> jobs;
  const std::size_t copies = quick ? 1 : 3;
  for (std::size_t copy = 0; copy < copies; ++copy) {
    const std::uint64_t seed = 600 + 10 * copy;
    scenario::ScenarioSpec balancing;
    balancing.protocol = "balancing";
    balancing.topology = "cycle";
    balancing.nodes = 9;
    balancing.consumer_pairs = 4;
    balancing.requests = 12;
    balancing.seed = seed;
    jobs.push_back(balancing);

    scenario::ScenarioSpec hybrid = balancing;
    hybrid.protocol = "hybrid";
    hybrid.topology = "random-grid";
    hybrid.nodes = 16;
    hybrid.seed = seed + 1;
    jobs.push_back(hybrid);

    scenario::ScenarioSpec gossip = balancing;
    gossip.protocol = "gossip";
    gossip.topology = "random-grid";
    gossip.nodes = 16;
    gossip.seed = seed + 2;
    gossip.knobs["fanout"] = std::int64_t{2};
    gossip.knobs["max-rounds"] = std::int64_t{400000};
    jobs.push_back(gossip);

    scenario::ScenarioSpec fidelity;
    fidelity.protocol = "fidelity";
    fidelity.topology = "random-grid";
    fidelity.nodes = 16;
    fidelity.consumer_pairs = 12;
    fidelity.requests = 100000;
    fidelity.seed = seed + 3;
    fidelity.knobs["memory-T"] = 50.0;
    fidelity.knobs["duration"] = 60.0;
    jobs.push_back(fidelity);
  }
  return jobs;
}

SuiteRun suite_serve(const Options& options) {
  // Warm-vs-cold serving gate. An in-process `serve::Server` answers a
  // mixed-protocol stream of run jobs over its AF_UNIX socket; every
  // served result must be bit-identical (modulo wall-clock timings) to a
  // direct registry run of the same spec — that equality is the gated
  // per-cell scalar, with the job count gated through the cell count.
  // The warm per-request wall time and, when a poqsim binary is at hand,
  // the same jobs as cold `poqsim run --spec` process launches land in
  // the timings (never compared by --check; throughput varies by host).
  using util::json::Value;
  const std::vector<scenario::ScenarioSpec> jobs = serve_job_grid(options.quick);

  serve::ServerOptions server_options;
  server_options.socket_path =
      "/tmp/poqsim-bench-serve-" + std::to_string(::getpid()) + ".sock";
  server_options.workers = 1;  // sequential submit+watch: honest per-request cost
  server_options.queue_depth = jobs.size();
  serve::Server server(server_options);
  server.start();

  const Clock::time_point start = Clock::now();
  std::vector<double> request_ms(jobs.size(), 0.0);
  std::vector<std::string> served(jobs.size());
  {
    serve::Client client(server_options.socket_path);
    client.connect();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const Clock::time_point job_start = Clock::now();
      Value request = Value::object();
      request.set("op", "submit_run");
      request.set("spec", jobs[i].to_json());
      request.set("watch", true);
      const Value reply = client.request(request);
      if (!reply.at("ok").as_bool()) {
        throw PreconditionError("serve suite: submit rejected: " + reply.dump());
      }
      const Value terminal = client.read_events();
      if (terminal.at("event").as_string() != "job_done") {
        throw PreconditionError("serve suite: job did not finish: " +
                                terminal.dump());
      }
      served[i] = scenario::RunMetrics::from_json(
                      terminal.at("result").at("metrics"))
                      .to_json(/*include_timings=*/false)
                      .dump();
      request_ms[i] = elapsed_ms(job_start);
    }
  }
  const double warm_total_ms = elapsed_ms(start);
  server.stop();

  // Ground truth after the timed window so the warm numbers stay clean.
  std::size_t identical_jobs = 0;
  std::vector<bool> identical(jobs.size(), false);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::string direct = scenario::registry()
                                   .run(jobs[i].protocol, jobs[i])
                                   .to_json(/*include_timings=*/false)
                                   .dump();
    identical[i] = served[i] == direct;
    if (identical[i]) ++identical_jobs;
  }

  // Cold comparison: the same jobs, each as a fresh `poqsim run --spec`
  // process. Recorded as a timing only — and skipped outright (negative
  // sentinel never written) when the binary is missing or fails.
  double cold_total_ms = -1.0;
  if (std::ifstream(options.poqsim).good()) {
    const std::string spec_path = server_options.socket_path + ".spec.json";
    const Clock::time_point cold_start = Clock::now();
    bool cold_ok = true;
    for (const scenario::ScenarioSpec& job : jobs) {
      {
        std::ofstream file(spec_path);
        file << job.to_json().dump();
      }
      const std::string command = "\"" + options.poqsim + "\" run --spec \"" +
                                  spec_path + "\" > /dev/null 2>&1";
      if (std::system(command.c_str()) != 0) {
        cold_ok = false;
        break;
      }
    }
    if (cold_ok) cold_total_ms = elapsed_ms(cold_start);
    std::remove(spec_path.c_str());
  }

  SuiteRun run;
  run.name = "serve";
  run.seeds = 1;
  run.intra_threads = 1;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    scenario::CellAggregate cell;
    cell.spec = jobs[i];
    cell.seeds = 1;
    util::RunningStats result_identical;
    result_identical.add(identical[i] ? 1.0 : 0.0);
    cell.scalars.emplace_back("serve_result_identical", result_identical);
    util::RunningStats ms;
    ms.add(request_ms[i]);
    cell.timings.emplace_back("serve_request_ms", ms);
    cell.wall_ms = request_ms[i];
    run.cells.push_back(std::move(cell));
  }
  // Suite-level aggregates ride on the first cell: the two gated scalars
  // the acceptance names, plus the warm/cold throughput as timings.
  const auto scalar_of = [](double x) {
    util::RunningStats stats;
    stats.add(x);
    return stats;
  };
  const double count = static_cast<double>(jobs.size());
  run.cells.front().scalars.emplace_back("serve_jobs", scalar_of(count));
  run.cells.front().scalars.emplace_back(
      "serve_results_identical", scalar_of(static_cast<double>(identical_jobs)));
  const double warm_rps = count / (warm_total_ms / 1000.0);
  run.cells.front().timings.emplace_back("serve_warm_req_per_s",
                                         scalar_of(warm_rps));
  std::cout << "serve: " << jobs.size() << " warm jobs in "
            << util::format_double(warm_total_ms, 0) << " ms ("
            << util::format_double(warm_rps, 1) << " req/s)";
  if (cold_total_ms >= 0.0) {
    const double cold_rps = count / (cold_total_ms / 1000.0);
    run.cells.front().timings.emplace_back("serve_cold_req_per_s",
                                           scalar_of(cold_rps));
    run.cells.front().timings.emplace_back("serve_cold_total_ms",
                                           scalar_of(cold_total_ms));
    std::cout << "; cold launches: " << util::format_double(cold_total_ms, 0)
              << " ms (" << util::format_double(cold_rps, 1) << " req/s, warm "
              << util::format_double(cold_total_ms / warm_total_ms, 1)
              << "x faster)";
  } else {
    std::cout << "; cold comparison skipped (no runnable poqsim at "
              << options.poqsim << ")";
  }
  std::cout << '\n';
  run.total_wall_ms = warm_total_ms + std::max(cold_total_ms, 0.0);
  return run;
}

SuiteRun suite_megascale(const Options& options) {
  // Megascale stress gate: streaming workloads on sparse full-grid tori.
  // Each cell runs the balancing protocol in streaming mode — Poisson
  // arrivals drawn from a virtual pool of two million consumer pairs
  // (derived lazily from keyed streams; the pool is never materialized) —
  // for a fixed round budget on n = 10^4 and ~10^5 grids (quick; the
  // full run adds 10^6). The gated scalars include
  // `memory_bytes_per_node`, the deterministic logical footprint of the
  // sparse ledger + pair store + substrate: it holds the
  // O(nodes + edges + live pairs) memory discipline to 1e-9, so any
  // dense n^2 structure creeping back moves it by orders of magnitude
  // and fails the gate. Rounds/sec is derived into the cell timings
  // (wall time is never compared by --check). Budgets shrink as n grows
  // so every cell does comparable total work; arrivals/backlog/satisfied
  // gate the streaming pipeline itself at every scale.
  // The 10^4+ cells run in the supply-building regime: random consumer
  // pairs on a torus that size are ~50+ hops apart, so no request
  // completes within a CI budget — they gate memory, arrivals, and the
  // swap kernels. The n = 49 anchor cell is small enough that the head
  // of the queue is actually served, gating the whole streaming
  // consumption path (arrival -> head_pair -> consume -> oracle hops ->
  // backlog) including both overhead denominators.
  struct Cell {
    std::size_t nodes;
    std::int64_t rounds;
    std::int64_t requests;  // 0 = run the full round budget
  };
  std::vector<Cell> cells = {
      {49, 2000, 300}, {10000, 120, 0}, {99856, 24, 0}};  // 7^2/100^2/316^2
  if (!options.quick) cells.push_back({1000000, 8, 0});   // 1000^2
  std::vector<scenario::ScenarioSpec> grid;
  for (const Cell& cell : cells) {
    scenario::ScenarioSpec spec;
    spec.protocol = "balancing";
    spec.topology = "full-grid";
    spec.nodes = cell.nodes;
    spec.consumer_pairs = 4;  // vestigial fixed sequence; streaming ignores it
    spec.requests = 1;
    spec.seed = 41;
    spec.knobs["arrival-rate"] = cell.nodes == 49 ? 2.0 : 8.0;
    spec.knobs["consumer-pool"] = std::int64_t{2000000};
    spec.knobs["max-rounds"] = cell.rounds;
    if (cell.requests > 0) spec.knobs["max-requests"] = cell.requests;
    grid.push_back(std::move(spec));
  }
  Options serial = options;
  serial.threads = 1;  // one cell at a time: honest rounds/sec
  SuiteRun run = run_grid("megascale", std::move(grid), 1, serial);
  for (scenario::CellAggregate& cell : run.cells) {
    if (!cell.has("rounds") || cell.wall_ms <= 0.0) continue;
    const double rounds = cell.at("rounds").mean();
    const double rounds_per_s = rounds / (cell.wall_ms / 1000.0);
    util::RunningStats stats;
    stats.add(rounds_per_s);
    cell.timings.emplace_back("rounds_per_s", stats);
    std::cout << "megascale: n=" << cell.spec.nodes << ": "
              << util::format_double(rounds, 0) << " rounds in "
              << util::format_double(cell.wall_ms, 0) << " ms ("
              << util::format_double(rounds_per_s, 1) << " rounds/s, "
              << util::format_double(
                     cell.has("memory_bytes_per_node")
                         ? cell.at("memory_bytes_per_node").mean()
                         : 0.0,
                     0)
              << " bytes/node)\n";
  }
  return run;
}

SuiteRun suite_faults(const Options& options) {
  // Fault-injection gate: path-oblivious balancing vs the planned-path
  // baseline under *identical* churn (same topology, workload, seed and
  // fault streams), three regimes, each a balancing/planned cell pair:
  //   * scripted_arc_outage — a cycle with one edge scripted down for the
  //     middle 80% of the budget. Planned routes shortest arcs on the
  //     static graph, so connections crossing the dead edge clog its
  //     window until link-up; balancing is path-oblivious and keeps
  //     consuming chains the long way around. This is the headline cell:
  //     the committed baseline pins balancing's delivered_under_fault
  //     well above planned's.
  //   * link_churn — stochastic link flapping (no crashes, nothing
  //     purged): both protocols degrade roughly with availability.
  //   * full_churn — mild node + link churn plus rate degradation;
  //     crashes purge stored pairs, exercising every fault code path.
  // Keyed fault streams make every cell bit-reproducible, so the gate
  // runs at rel-tol 1e-9 like the other determinism-grade suites; the
  // backlog never drains, making satisfied/delivered throughput within
  // the fixed budget the comparable quantity.
  const std::int64_t budget = options.quick ? 3000 : 6000;
  struct Regime {
    const char* label;
    const char* topology;
    bool scripted;
    double link_mtbf, link_mttr, node_mtbf, node_mttr, degradation;
  };
  const std::vector<Regime> regimes = {
      {"scripted_arc_outage", "cycle", true, 0.0, 10.0, 0.0, 10.0, 0.0},
      {"link_churn", "random-grid", false, 60.0, 30.0, 0.0, 10.0, 0.0},
      {"full_churn", "random-grid", false, 150.0, 5.0, 200.0, 6.0, 0.1},
  };
  std::vector<scenario::ScenarioSpec> grid;
  for (const Regime& regime : regimes) {
    for (const char* protocol : {"balancing", "planned"}) {
      scenario::ScenarioSpec spec;
      spec.protocol = protocol;
      spec.topology = regime.topology;
      spec.nodes = 25;
      spec.consumer_pairs = 20;
      spec.requests = 100000;  // backlog never drains within the budget
      spec.seed = 4200;
      spec.knobs["max-rounds"] = budget;
      if (std::string(protocol) == "planned") {
        spec.knobs["window"] = std::int64_t{4};
        spec.knobs["mode"] = std::string("oriented");
      }
      if (regime.scripted) {
        spec.faults.push_back({static_cast<std::uint32_t>(budget / 10),
                               sim::FaultEventKind::kLinkDown, 0, 0, 1, 1.0});
        spec.faults.push_back({static_cast<std::uint32_t>(budget - budget / 10),
                               sim::FaultEventKind::kLinkUp, 0, 0, 1, 1.0});
      } else {
        spec.knobs["fault-link-mtbf"] = regime.link_mtbf;
        spec.knobs["fault-link-mttr"] = regime.link_mttr;
        if (regime.node_mtbf > 0.0) {
          spec.knobs["fault-node-mtbf"] = regime.node_mtbf;
          spec.knobs["fault-node-mttr"] = regime.node_mttr;
        }
        if (regime.degradation > 0.0) {
          spec.knobs["fault-rate-degradation"] = regime.degradation;
        }
      }
      grid.push_back(std::move(spec));
    }
  }
  SuiteRun run = run_grid("faults", std::move(grid), /*seeds=*/1, options);
  // Surface the per-regime comparison and pin it as a gated scalar on the
  // balancing cell: the margin must stay positive for the headline regime.
  for (std::size_t i = 0; i + 1 < run.cells.size(); i += 2) {
    scenario::CellAggregate& balancing = run.cells[i];
    const scenario::CellAggregate& planned = run.cells[i + 1];
    if (!balancing.has("delivered_under_fault") ||
        !planned.has("delivered_under_fault")) {
      continue;
    }
    const double ours = balancing.at("delivered_under_fault").mean();
    const double theirs = planned.at("delivered_under_fault").mean();
    util::RunningStats margin;
    margin.add(ours - theirs);
    balancing.scalars.emplace_back("delivered_margin_vs_planned", margin);
    std::cout << "faults: " << regimes[i / 2].label
              << ": balancing delivered " << util::format_double(ours, 0)
              << " vs planned " << util::format_double(theirs, 0)
              << " under identical churn\n";
  }
  return run;
}

using SuiteFn = SuiteRun (*)(const Options&);
const std::vector<std::pair<std::string, SuiteFn>> kSuites = {
    {"fig4_overhead_vs_distillation", suite_fig4},
    {"fig5_overhead_vs_nodes", suite_fig5},
    {"ablation_variants", suite_ablation_variants},
    {"baseline_comparison", suite_baseline_comparison},
    {"ablation_knowledge", suite_ablation_knowledge},
    {"fidelity_decay", suite_fidelity_decay},
    {"parallel_scaling", suite_parallel_scaling},
    {"hotpath", suite_hotpath},
    {"async_routing", suite_async_routing},
    {"serve", suite_serve},
    {"megascale", suite_megascale},
    {"faults", suite_faults},
};

// ---------------------------------------------------------------------------
// Regression check (--check)
// ---------------------------------------------------------------------------

/// Compare one suite's cells against a committed baseline. Cells must
/// match pairwise by spec; every baseline metric mean must agree within
/// the relative tolerance. Returns the number of violations (0 = pass).
int check_against_baseline(const SuiteRun& run, const util::json::Value& baseline,
                           double rel_tol) {
  int violations = 0;
  const auto complain = [&](const std::string& message) {
    std::cerr << "CHECK FAIL: " << message << '\n';
    ++violations;
  };
  const util::json::Value& cells = baseline.at("cells");
  if (cells.size() != run.cells.size()) {
    complain(util::str_cat("cell count mismatch: baseline has ", cells.size(),
                           ", run produced ", run.cells.size()));
    return violations;
  }
  for (std::size_t i = 0; i < run.cells.size(); ++i) {
    const util::json::Value& base_cell = cells.at(i);
    const util::json::Value current_spec = run.cells[i].spec.to_json();
    if (!(base_cell.at("spec") == current_spec)) {
      complain(util::str_cat("cell ", i, " spec mismatch (baseline ",
                             base_cell.at("spec").dump(), " vs ",
                             current_spec.dump(), ")"));
      continue;
    }
    for (const auto& [name, summary] : base_cell.at("metrics").members()) {
      const double base_mean = summary.at("mean").as_number();
      if (!run.cells[i].has(name)) {
        complain(util::str_cat("cell ", i, ": metric '", name,
                               "' missing from this run"));
        continue;
      }
      const double mean = run.cells[i].at(name).mean();
      const double scale = std::max(std::abs(base_mean), 1e-9);
      if (std::abs(mean - base_mean) > rel_tol * scale) {
        complain(util::str_cat("cell ", i, " (", run.cells[i].spec.protocol, " ",
                               run.cells[i].spec.topology, " n=",
                               run.cells[i].spec.nodes, "): metric '", name,
                               "' drifted: baseline ", base_mean, ", got ", mean,
                               " (rel-tol ", rel_tol, ")"));
      }
    }
  }
  return violations;
}

int run_check(const std::vector<SuiteRun>& runs, const Options& options) {
  std::ifstream file(options.check_path);
  if (!file) throw PreconditionError("cannot read baseline " + options.check_path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const util::json::Value baseline = util::json::Value::parse(buffer.str());
  const std::string bench_name = baseline.at("bench").as_string();
  if (static_cast<int>(baseline.at("schema_version").as_number()) !=
      kSchemaVersion) {
    throw PreconditionError("baseline schema_version mismatch; regenerate " +
                            options.check_path);
  }
  // A baseline only gates the grid scale it was recorded at: quick
  // baselines cannot vouch for the full paper-scale grids (and vice
  // versa) — their cells are different specs. Skip explicitly rather
  // than failing on the inevitable spec mismatch, so a full-scale run
  // against a quick-only baseline reads as "not gated", not "regressed".
  const bool baseline_quick = baseline.at("config").at("quick").as_bool();
  if (baseline_quick != options.quick) {
    std::cout << "CHECK SKIP: " << bench_name << ": baseline "
              << options.check_path << " was recorded with "
              << (baseline_quick ? "--quick" : "full-scale") << " grids but "
              << "this run used " << (options.quick ? "--quick" : "full-scale")
              << " grids; commit a matching baseline to gate this scale\n";
    return 0;
  }
  for (const SuiteRun& run : runs) {
    if (run.name != bench_name) continue;
    const int violations =
        check_against_baseline(run, baseline, options.rel_tol);
    if (violations == 0) {
      std::cout << "CHECK PASS: " << run.name << " matches "
                << options.check_path << " (rel-tol "
                << util::format_double(options.rel_tol, 2) << ", "
                << run.cells.size() << " cells)\n";
      return 0;
    }
    std::cerr << "CHECK FAIL: " << run.name << ": " << violations
              << " violation(s) against " << options.check_path << '\n';
    return 1;
  }
  throw PreconditionError("baseline bench '" + bench_name +
                          "' was not run; pass a matching --suite");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);  // skips argv[0] itself
    if (args.has("help")) {
      std::cout
          << "usage: run_benches [--quick] [--out-dir DIR] [--suite NAME]\n"
             "                   [--threads N] [--intra-threads K]\n"
             "                   [--check BASELINE.json] [--rel-tol X]\n"
             "                   [--poqsim PATH]\n"
             "Runs the figure/ablation sweeps and writes unified "
             "BENCH_*.json.\nsuites:\n";
      for (const auto& [name, fn] : kSuites) std::cout << "  " << name << '\n';
      return 0;
    }
    Options options;
    options.quick = args.get_bool("quick", false);
    options.out_dir = args.get_string("out-dir", ".");
    options.suite_filter = args.get_string("suite", "");
    const std::int64_t threads = args.get_int("threads", 0);
    if (threads < 0 || threads > 4096) {
      throw poq::PreconditionError("--threads must be in [0, 4096] (got " +
                                   std::to_string(threads) + ")");
    }
    options.threads = static_cast<unsigned>(threads);
    const std::int64_t intra_threads = args.get_int("intra-threads", 1);
    if (intra_threads < 0 || intra_threads > 4096) {
      throw poq::PreconditionError("--intra-threads must be in [0, 4096] (got " +
                                   std::to_string(intra_threads) + ")");
    }
    options.intra_threads =
        intra_threads == 0 ? 0 : static_cast<unsigned>(intra_threads);
    options.check_path = args.get_string("check", "");
    options.rel_tol = args.get_double("rel-tol", 0.2);
    options.poqsim = args.get_string("poqsim", "./poqsim");
    const auto unused = args.unused();
    if (!unused.empty()) {
      throw poq::PreconditionError("unknown option --" + unused.front());
    }
    if (!args.positional().empty()) {
      throw poq::PreconditionError("unexpected argument '" +
                                   args.positional().front() +
                                   "' (options are written --name value)");
    }

    std::vector<std::pair<std::string, SuiteFn>> selected;
    for (const auto& entry : kSuites) {
      if (options.suite_filter.empty() ||
          entry.first.find(options.suite_filter) != std::string::npos) {
        selected.push_back(entry);
      }
    }
    if (selected.empty()) {
      throw poq::PreconditionError("--suite '" + options.suite_filter +
                                   "' matches no suite (see --help)");
    }

    std::vector<SuiteRun> runs;
    for (const auto& [name, fn] : selected) {
      runs.push_back(fn(options));
      write_suite(runs.back(), options);
    }
    if (!options.check_path.empty()) return run_check(runs, options);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
