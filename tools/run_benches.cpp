// run_benches — machine-readable driver for the figure benches.
//
// Runs the Fig. 4 (overhead vs distillation D) and Fig. 5 (overhead vs
// network size |N|) sweeps through the same bench::run_balancing_cell
// harness the table benches use, timing every cell, and writes one
// BENCH_<name>.json per figure so CI and future perf PRs can diff
// results without scraping table output.
//
// Usage: run_benches [--quick] [--out-dir DIR]
//   --quick    smaller sweeps and one seed per cell (the `bench` target's
//              default); omit for the full paper-scale grids
//   --out-dir  where to write BENCH_*.json (default: current directory)
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/args.hpp"
#include "util/error.hpp"

namespace {

using namespace poq;
using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// JSON numbers must not be NaN/Inf; empty cells report null instead.
std::string json_number(double value, int digits) {
  if (!std::isfinite(value)) return "null";
  return util::format_double(value, digits);
}

struct CellRecord {
  std::string family;
  std::size_t nodes = 0;
  double distillation = 1.0;
  bench::CellResult result;
  double wall_ms = 0.0;
};

void append_cell(std::ostringstream& out, const CellRecord& record, bool last) {
  const bench::CellResult& cell = record.result;
  out << "    {\"family\": \"" << record.family << "\""
      << ", \"nodes\": " << record.nodes
      << ", \"distillation\": " << json_number(record.distillation, 2)
      << ", \"overhead_paper_mean\": "
      << (cell.overhead_paper.count()
              ? json_number(cell.overhead_paper.mean(), 4)
              : std::string("null"))
      << ", \"overhead_exact_mean\": "
      << (cell.overhead_exact.count()
              ? json_number(cell.overhead_exact.mean(), 4)
              : std::string("null"))
      << ", \"satisfied_mean\": " << json_number(cell.satisfied.mean(), 1)
      << ", \"starved_runs\": " << cell.starved_runs
      << ", \"wall_ms\": " << json_number(record.wall_ms, 2) << "}"
      << (last ? "\n" : ",\n");
}

void write_bench_json(const std::string& out_dir, const std::string& name,
                      const bench::FigureSetup& setup,
                      const std::vector<CellRecord>& cells, double total_ms) {
  const std::string path = out_dir + "/BENCH_" + name + ".json";
  std::ostringstream out;
  out << "{\n"
      << "  \"bench\": \"" << name << "\",\n"
      << "  \"schema_version\": 1,\n"
      << "  \"config\": {\"consumer_pairs\": " << setup.consumer_pairs
      << ", \"round_budget\": " << setup.round_budget
      << ", \"seeds\": " << setup.seeds << "},\n"
      << "  \"total_wall_ms\": " << json_number(total_ms, 2) << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    append_cell(out, cells[i], i + 1 == cells.size());
  }
  out << "  ]\n}\n";
  std::ofstream file(path);
  if (!file) throw PreconditionError("cannot write " + path);
  file << out.str();
  std::cout << "wrote " << path << " (" << cells.size() << " cells, "
            << util::format_double(total_ms, 0) << " ms)\n";
}

const std::vector<graph::TopologyFamily> kFamilies = {
    graph::TopologyFamily::kCycle, graph::TopologyFamily::kRandomGrid,
    graph::TopologyFamily::kFullGrid};

std::vector<CellRecord> sweep(const std::vector<std::size_t>& sizes,
                              const std::vector<double>& distillations,
                              const bench::FigureSetup& setup) {
  std::vector<CellRecord> cells;
  for (const std::size_t n : sizes) {
    for (const double d : distillations) {
      for (const auto family : kFamilies) {
        CellRecord record;
        record.family = graph::family_name(family);
        record.nodes = n;
        record.distillation = d;
        const Clock::time_point start = Clock::now();
        record.result = bench::run_balancing_cell(family, n, d, setup);
        record.wall_ms = elapsed_ms(start);
        cells.push_back(std::move(record));
      }
    }
  }
  return cells;
}

void run_fig4(const std::string& out_dir, bool quick) {
  bench::FigureSetup setup;
  setup.round_budget = quick ? 2000 : 6000;
  setup.seeds = quick ? 1 : 3;
  const std::vector<double> distillations =
      quick ? std::vector<double>{1.0, 2.0, 3.0}
            : std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0};
  const Clock::time_point start = Clock::now();
  const std::vector<CellRecord> cells = sweep({25}, distillations, setup);
  write_bench_json(out_dir, "fig4_overhead_vs_distillation", setup, cells,
                   elapsed_ms(start));
}

void run_fig5(const std::string& out_dir, bool quick) {
  bench::FigureSetup setup;
  setup.round_budget = quick ? 1000 : 3000;
  setup.seeds = quick ? 1 : 3;
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{9, 16, 25}
            : std::vector<std::size_t>{9, 16, 25, 36, 49, 64, 81, 100};
  const Clock::time_point start = Clock::now();
  const std::vector<CellRecord> cells = sweep(sizes, {1.0}, setup);
  write_bench_json(out_dir, "fig5_overhead_vs_nodes", setup, cells,
                   elapsed_ms(start));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);  // skips argv[0] itself
    if (args.has("help")) {
      std::cout << "usage: run_benches [--quick] [--out-dir DIR]\n"
                   "Runs the Fig. 4/5 sweeps and writes BENCH_*.json.\n";
      return 0;
    }
    const bool quick = args.get_bool("quick", false);
    const std::string out_dir = args.get_string("out-dir", ".");
    const auto unused = args.unused();
    if (!unused.empty()) {
      throw poq::PreconditionError("unknown option --" + unused.front());
    }
    if (!args.positional().empty()) {
      throw poq::PreconditionError("unexpected argument '" +
                                   args.positional().front() +
                                   "' (options are written --name value)");
    }
    run_fig4(out_dir, quick);
    run_fig5(out_dir, quick);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
